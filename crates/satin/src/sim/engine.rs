//! The simulated Satin cluster runtime.
//!
//! Implements the paper's Sec. III-B mechanics on the discrete-event
//! engine: a master node seeds the root job, jobs divide into locally
//! queued children (LIFO for the owner), idle nodes steal from random
//! victims (FIFO end — the biggest jobs), stolen inputs and returned
//! outputs are charged to the interconnect, and message handling slows
//! down when a node's cores are all computing (the paper's explanation for
//! Satin's own limited scaling). Node crashes re-execute lost subtrees,
//! reproducing Satin's fault-tolerance behaviour.
//!
//! Leaf execution is delegated to a [`LeafRuntime`]: one CPU core for plain
//! Satin, the Cashmere device path in the `cashmere` crate.

use super::steal::{build_steal_policy, StealKind, StealPolicy};
use crate::sim::app::{ClusterApp, DcStep, LeafCtx, LeafPlan, LeafRuntime};
use crate::sim::report::RunReport;
use cashmere_des::fault::{FaultInjector, FaultPlan, MessageFate};
use cashmere_des::obs::{prof, ProbeSeries};
use cashmere_des::rng::StreamRng;
use cashmere_des::trace::{LaneId, SpanId, SpanKind};
use cashmere_des::{Sim, SimTime};
use cashmere_netsim::nic::{schedule_transfer, NodeNic};
use cashmere_netsim::NetConfig;
use std::collections::{HashMap, VecDeque};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    pub nodes: usize,
    /// CPU cores per node (DAS-4: dual quad-core = 8).
    pub cores_per_node: usize,
    pub net: NetConfig,
    pub seed: u64,
    /// CPU time to create/manage one job.
    pub job_overhead: SimTime,
    /// Back-off after an unsuccessful steal attempt (doubles on repeated
    /// failures up to `steal_retry_max`, resets on success or local work).
    pub steal_retry: SimTime,
    /// Upper bound of the steal back-off.
    pub steal_retry_max: SimTime,
    /// Maximum node-level leaf jobs a node executes concurrently. Plain
    /// Satin uses one per core; Cashmere limits this to a small number so
    /// that one set of device jobs computes while the next set's transfers
    /// proceed (paper Sec. II-C3) and surplus node jobs stay stealable.
    pub max_concurrent_leaves: usize,
    /// Record Gantt spans.
    pub trace: bool,
    /// Injected faults (node crashes, device deaths, lossy links, transient
    /// launch faults), replayed deterministically from the seed. The empty
    /// plan injects nothing and consumes no randomness, so a run with it is
    /// byte-identical to a run without one.
    pub faults: FaultPlan,
    /// How long a thief waits for a steal request/refusal round trip before
    /// abandoning the attempt (the request or reply was lost). Only armed
    /// when a fault plan is active.
    pub steal_timeout: SimTime,
    /// Satin-style orphan-result reuse: when a crash orphans a subtree,
    /// completed results still held by surviving nodes are salvaged into a
    /// global result table and reused by the re-executed subtree instead of
    /// recomputing them. Disable (`--no-orphan-reuse` in the bench bins) to
    /// measure the ablation: every orphaned result is recomputed.
    pub orphan_reuse: bool,
    /// Flight-recorder cadence: when set, a read-only probe event samples
    /// cluster state (busy cores, queue depths, steal rate, in-flight
    /// bytes, placement mix) every `probe_interval` of virtual time into a
    /// [`ProbeSeries`]. Sampling consumes no randomness and the pending
    /// probe is cancelled at root completion, so enabling it changes no
    /// simulated outcome. Must be positive.
    pub probe_interval: Option<SimTime>,
    /// Steal-victim selection policy. The default ([`StealKind::UniformRandom`])
    /// reproduces the historical inline random pick draw-for-draw, so
    /// default-config runs are byte-identical across the policy refactor.
    pub steal: StealKind,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            nodes: 1,
            cores_per_node: 8,
            net: NetConfig::qdr_infiniband(),
            seed: 42,
            job_overhead: SimTime::from_micros(20),
            steal_retry: SimTime::from_micros(200),
            steal_retry_max: SimTime::from_secs(10),
            max_concurrent_leaves: usize::MAX,
            trace: false,
            faults: FaultPlan::default(),
            steal_timeout: SimTime::from_millis(5),
            orphan_reuse: true,
            probe_interval: None,
            steal: StealKind::default(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    /// Divided; waiting for children.
    Waiting,
    Done,
    /// Discarded after a crash; superseded by a re-executed ancestor.
    Lost,
}

struct JobRec<A: ClusterApp> {
    input: Option<A::Input>,
    parent: Option<(usize, usize)>,
    /// Node where this job's record lives (its parent's combine runs here).
    home_node: usize,
    /// Node currently assigned to execute the job.
    exec_node: usize,
    state: JobState,
    pending: usize,
    children: Vec<usize>,
    child_outputs: Vec<Option<A::Output>>,
    /// Bumped on crash-reset; stale events check this.
    generation: u64,
    /// True for jobs (re-)executed because of a failure: restart roots and
    /// everything divided under them. Their leaf compute is accounted as
    /// recovery cost.
    replay: bool,
    /// Span that caused this job to run where it runs: the parent's divide
    /// span at creation, replaced by the steal span when the job is stolen.
    /// Lineage only — `SpanId::NONE` whenever tracing is off.
    origin_span: SpanId,
    /// This job's own divide span; parents its children and its combine.
    divide_span: SpanId,
}

enum Task {
    Job(usize),
    Combine(usize),
}

struct NodeState {
    deque: VecDeque<Task>,
    busy_cores: usize,
    running_leaves: usize,
    stealing: bool,
    steal_failures: u32,
    /// Bumped whenever an outstanding steal attempt resolves (success,
    /// refusal, timeout, crash). In-flight timeout and arrival events
    /// capture the value at initiation and ignore themselves when stale.
    steal_seq: u64,
    /// Pending steal-retry event, cancelled when the run completes so that
    /// trailing no-op polls do not advance the clock past the real finish.
    retry_event: Option<cashmere_des::EventHandle>,
    /// Pending steal-timeout event (armed only under an active fault plan).
    steal_timeout_event: Option<cashmere_des::EventHandle>,
    alive: bool,
    /// Bumped every time the node crashes. Events scheduled by a previous
    /// incarnation (leaf completions, async submits, in-flight steals)
    /// capture the value and ignore themselves after a rejoin, when `alive`
    /// is true again but the node's runtime state has been rebuilt from
    /// scratch.
    incarnation: u64,
    tick_scheduled: bool,
    cpu_lane: LaneId,
    net_lane: LaneId,
    /// When the outstanding steal attempt was initiated (steal RTT metric).
    steal_started: SimTime,
}

/// A salvaged orphan result in the global result table: the output of a
/// completed subtree whose enclosing tree was reset by a crash, still held
/// by a surviving node.
struct OrphanEntry<O> {
    output: O,
    /// Node physically holding the result; fetching it from elsewhere is
    /// charged as a network transfer.
    holder: usize,
    bytes: u64,
}

/// The simulation world: nodes, jobs, application, leaf runtime.
pub struct World<A: ClusterApp, L: LeafRuntime<A>> {
    pub app: A,
    pub leaf: L,
    cfg: SimConfig,
    nodes: Vec<NodeState>,
    jobs: Vec<JobRec<A>>,
    nics: Vec<NodeNic>,
    rng: StreamRng,
    /// Steal-victim selection (the work-stealing half of the policy arena).
    steal: Box<dyn StealPolicy>,
    /// `(thief, victim)` per initiated steal attempt, recorded only when
    /// `cfg.trace` is set (determinism tests read it back via
    /// [`ClusterSim::steal_victims`]).
    victim_log: Vec<(usize, usize)>,
    faults: FaultInjector,
    root_job: usize,
    root_result: Option<A::Output>,
    done: bool,
    /// Global result table (Satin's orphan-job salvage): completed subtree
    /// results keyed by tree path. Divides are deterministic, so a
    /// re-executed tree is isomorphic to the lost one and the path (child
    /// indices from the root) identifies "the same job" across re-execution.
    /// The map is only ever probed by key and purged by holder — iteration
    /// order is never observed, so determinism holds.
    orphans: HashMap<Vec<u32>, OrphanEntry<A::Output>>,
    /// Crash-restarted subtree roots not yet re-completed; drives
    /// `report.time_to_recover`.
    recovery_outstanding: Vec<usize>,
    /// When the current recovery episode (≥ 1 outstanding restart root)
    /// began.
    recovering_since: Option<SimTime>,
    /// Flight-recorder series (`Some` iff `cfg.probe_interval` is set).
    probe: Option<ProbeSeries>,
    /// Pending probe event, cancelled at root completion so sampling never
    /// advances the clock past the real finish.
    probe_event: Option<cashmere_des::EventHandle>,
    pub report: RunReport,
}

impl<A: ClusterApp, L: LeafRuntime<A>> World<A, L> {
    fn busy_fraction(&self, node: usize) -> f64 {
        self.nodes[node].busy_cores as f64 / self.cfg.cores_per_node as f64
    }

    fn new_job(&mut self, input: A::Input, parent: Option<(usize, usize)>, home: usize) -> usize {
        // Records are kept for the lifetime of the simulation (inputs and
        // outputs are dropped on completion, bookkeeping stays): iterative
        // drivers accumulate O(jobs × iterations) small records. Fine for
        // the paper's 2–3 iterations; a reclaiming arena is the extension
        // point if thousand-iteration studies ever need it.
        let id = self.jobs.len();
        self.jobs.push(JobRec {
            input: Some(input),
            parent,
            home_node: home,
            exec_node: home,
            state: JobState::Queued,
            pending: 0,
            children: Vec::new(),
            child_outputs: Vec::new(),
            generation: 0,
            replay: false,
            origin_span: SpanId::NONE,
            divide_span: SpanId::NONE,
        });
        self.report.jobs_created += 1;
        id
    }
}

type S<A, L> = Sim<World<A, L>>;

/// The simulated cluster: create once, then run one or more root jobs
/// (iterative applications run one root per iteration with a broadcast in
/// between).
pub struct ClusterSim<A: ClusterApp, L: LeafRuntime<A>> {
    sim: S<A, L>,
    world: World<A, L>,
}

impl<A: ClusterApp, L: LeafRuntime<A>> ClusterSim<A, L> {
    pub fn new(app: A, leaf: L, cfg: SimConfig) -> Self {
        let _prof = prof::scope("cluster::build");
        assert!(cfg.nodes >= 1, "need at least one node");
        assert!(cfg.cores_per_node >= 1);
        if let Err(e) = cfg.faults.validate(cfg.nodes) {
            panic!("invalid fault plan: {e}");
        }
        assert!(
            cfg.probe_interval != Some(SimTime::ZERO),
            "probe_interval must be positive"
        );
        let mut sim = Sim::new(cfg.seed);
        sim.trace.set_enabled(cfg.trace);
        sim.metrics.set_enabled(cfg.trace);
        let nodes = (0..cfg.nodes)
            .map(|n| NodeState {
                deque: VecDeque::new(),
                busy_cores: 0,
                running_leaves: 0,
                stealing: false,
                steal_failures: 0,
                steal_seq: 0,
                retry_event: None,
                steal_timeout_event: None,
                alive: true,
                incarnation: 0,
                tick_scheduled: false,
                cpu_lane: sim.trace.add_lane(format!("node{n}.cpu")),
                net_lane: sim.trace.add_lane(format!("node{n}.net")),
                steal_started: SimTime::ZERO,
            })
            .collect();
        let world = World {
            app,
            leaf,
            nics: vec![NodeNic::default(); cfg.nodes],
            nodes,
            jobs: Vec::new(),
            rng: StreamRng::new(cfg.seed, 0x57EA1),
            steal: build_steal_policy(cfg.steal),
            victim_log: Vec::new(),
            faults: FaultInjector::new(cfg.faults.clone(), cfg.seed),
            root_job: 0,
            root_result: None,
            done: false,
            orphans: HashMap::new(),
            recovery_outstanding: Vec::new(),
            recovering_since: None,
            probe: cfg.probe_interval.map(ProbeSeries::new),
            probe_event: None,
            report: RunReport::new(cfg.nodes),
            cfg,
        };
        let mut cs = ClusterSim { sim, world };
        // Crashes and joins named in the plan are ordinary scheduled events.
        for c in cs.world.cfg.faults.node_crashes.clone() {
            cs.schedule_crash(c.node, c.at)
                .expect("validated plan entries schedule cleanly at t=0");
        }
        for j in cs.world.cfg.faults.node_joins.clone() {
            cs.schedule_join(j.node, j.at)
                .expect("validated plan entries schedule cleanly at t=0");
        }
        // Nodes whose first plan event is a join start the run offline.
        for n in cs.world.cfg.faults.initially_offline(cs.world.cfg.nodes) {
            cs.world.nodes[n].alive = false;
        }
        cs
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    pub fn report(&self) -> &RunReport {
        &self.world.report
    }

    pub fn trace(&self) -> &cashmere_des::trace::Trace {
        &self.sim.trace
    }

    pub fn metrics(&self) -> &cashmere_des::MetricsRegistry {
        &self.sim.metrics
    }

    /// The flight-recorder series sampled so far (`Some` iff
    /// [`SimConfig::probe_interval`] is set).
    pub fn probe_series(&self) -> Option<&ProbeSeries> {
        self.world.probe.as_ref()
    }

    /// `(thief, victim)` per initiated steal attempt, in simulation order.
    /// Recorded only when [`SimConfig::trace`] is on (empty otherwise);
    /// determinism tests compare this sequence across runs.
    pub fn steal_victims(&self) -> &[(usize, usize)] {
        &self.world.victim_log
    }

    /// Access the leaf runtime (e.g. to inspect Cashmere device state).
    pub fn leaf_runtime(&self) -> &L {
        &self.world.leaf
    }

    /// Mutable access to the leaf runtime, for pre-run configuration such
    /// as the advisor's virtual speed/link scaling. Call before `run`.
    pub fn leaf_runtime_mut(&mut self) -> &mut L {
        &mut self.world.leaf
    }

    /// Schedule node `n` to crash at absolute time `at`. Must be scheduled
    /// before the run that it should interrupt. Node 0 (the master) cannot
    /// crash — as in Satin, the master holds the root. Rejects (rather than
    /// silently accepting or panicking on) the master, out-of-range nodes,
    /// and crash times already in the past.
    ///
    /// Crashing a node that is already down when the event fires is a
    /// documented **no-op**: the event is discarded and `report.crashes`
    /// counts only real alive→dead transitions, so scheduling two crashes
    /// for the same node never double-counts. (Plan files additionally
    /// reject consecutive crashes without a join in between at validation
    /// time.)
    pub fn schedule_crash(&mut self, node: usize, at: SimTime) -> Result<(), String> {
        if node == 0 {
            return Err("the master node (0) cannot crash in this model".into());
        }
        if node >= self.world.cfg.nodes {
            return Err(format!(
                "node {node} out of range (cluster has {} nodes)",
                self.world.cfg.nodes
            ));
        }
        if at < self.sim.now() {
            return Err(format!(
                "crash time {at} is in the past (virtual time is {})",
                self.sim.now()
            ));
        }
        self.sim.schedule_at_as(
            "event::crash",
            at,
            move |w: &mut World<A, L>, sim: &mut S<A, L>| {
                crash(w, sim, node);
            },
        );
        Ok(())
    }

    /// Schedule node `n` to (re)join the cluster at absolute time `at`. A
    /// joining node comes up empty — no jobs, no steal state, a fresh NIC —
    /// and immediately re-enters the steal victim sets (victim selection
    /// only checks liveness). Joining a node that is already up is a no-op.
    /// Same request validation as [`ClusterSim::schedule_crash`].
    pub fn schedule_join(&mut self, node: usize, at: SimTime) -> Result<(), String> {
        if node == 0 {
            return Err("the master node (0) cannot leave or join in this model".into());
        }
        if node >= self.world.cfg.nodes {
            return Err(format!(
                "node {node} out of range (cluster has {} nodes)",
                self.world.cfg.nodes
            ));
        }
        if at < self.sim.now() {
            return Err(format!(
                "join time {at} is in the past (virtual time is {})",
                self.sim.now()
            ));
        }
        self.sim.schedule_at_as(
            "event::join",
            at,
            move |w: &mut World<A, L>, sim: &mut S<A, L>| {
                join(w, sim, node);
            },
        );
        Ok(())
    }

    /// Run one root job to completion and return its output. Virtual time
    /// continues from where the previous call left off.
    pub fn run_root(&mut self, input: A::Input) -> A::Output {
        let _prof = prof::scope("satin::run-root");
        self.world.done = false;
        self.world.root_result = None;
        // Orphan results and recovery episodes never span root runs (both
        // are settled when the previous root completed); clear defensively.
        self.world.orphans.clear();
        self.world.recovery_outstanding.clear();
        self.world.recovering_since = None;
        let start = self.sim.now();
        let root = self.world.new_job(input, None, 0);
        self.world.root_job = root;
        self.world.nodes[0].deque.push_back(Task::Job(root));
        for n in 0..self.world.cfg.nodes {
            schedule_tick(&mut self.world, &mut self.sim, n);
        }
        if let Some(iv) = self.world.cfg.probe_interval {
            // Probes fire on the global cadence grid (multiples of the
            // interval), starting strictly after `start` so iterative
            // drivers never record a duplicate timestamp.
            let first = SimTime::from_nanos((start.as_nanos() / iv.as_nanos() + 1) * iv.as_nanos());
            schedule_probe(&mut self.world, &mut self.sim, first);
        }
        self.sim.run(&mut self.world);
        let out = self
            .world
            .root_result
            .take()
            .expect("cluster drained without producing the root result");
        self.world.report.makespan = self.sim.now() - start;
        self.world.report.total_time = self.sim.now();
        out
    }

    /// Master broadcasts `bytes` to every other node (iterative apps'
    /// inter-iteration synchronization). Advances virtual time to the last
    /// arrival.
    pub fn broadcast(&mut self, bytes: u64) {
        let w = &mut self.world;
        let now = self.sim.now();
        let mut last = now;
        for n in 1..w.cfg.nodes {
            if !w.nodes[n].alive {
                continue;
            }
            let (src_busy, dst_busy) = (w.busy_fraction(0), w.busy_fraction(n));
            let (a, rest) = w.nics.split_at_mut(n);
            let tr = schedule_transfer(
                &w.cfg.net,
                now,
                &mut a[0],
                &mut rest[0],
                bytes,
                src_busy,
                dst_busy,
            );
            w.report.bytes_broadcast += bytes;
            if self.sim.trace.enabled() {
                self.sim.trace.record(
                    w.nodes[n].net_lane,
                    SpanKind::Network,
                    "broadcast",
                    tr.start,
                    tr.arrival,
                );
            }
            self.sim.metrics.observe("net.transfer", tr.duration());
            last = last.max(tr.arrival);
        }
        // Advance virtual time to the end of the broadcast.
        if last > self.sim.now() {
            self.sim
                .schedule_at_as("event::broadcast", last, |_w, _s| {});
            self.sim.run(&mut self.world);
        }
    }
}

/// Update the node's busy-core gauge after `busy_cores` changed. The
/// `enabled` check keeps the label formatting off the hot path.
fn note_busy_cores<A: ClusterApp, L: LeafRuntime<A>>(w: &World<A, L>, sim: &mut S<A, L>, n: usize) {
    if sim.metrics.enabled() {
        let now = sim.now();
        sim.metrics.gauge_set(
            &format!("node{n}.busy_cores"),
            now,
            w.nodes[n].busy_cores as f64,
        );
    }
}

/// Arm the flight recorder's next firing at absolute time `at`.
fn schedule_probe<A: ClusterApp, L: LeafRuntime<A>>(
    w: &mut World<A, L>,
    sim: &mut S<A, L>,
    at: SimTime,
) {
    let h = sim.schedule_at_as(
        "event::probe",
        at,
        |w: &mut World<A, L>, sim: &mut S<A, L>| {
            w.probe_event = None;
            if w.done {
                return;
            }
            sample_probe(w, sim.now());
            if let Some(iv) = w.cfg.probe_interval {
                let at = sim.now() + iv;
                schedule_probe(w, sim, at);
            }
        },
    );
    w.probe_event = Some(h);
}

/// Take one flight-recorder sample: strictly read-only over the world (no
/// RNG, no state mutation outside the series itself), so probing cannot
/// perturb the simulation. Column order is fixed by this function, which
/// makes the series layout — and every export — byte-deterministic.
fn sample_probe<A: ClusterApp, L: LeafRuntime<A>>(w: &mut World<A, L>, now: SimTime) {
    let mut cols: Vec<(String, f64)> = Vec::with_capacity(16 + 2 * w.cfg.nodes);
    let alive = w.nodes.iter().filter(|n| n.alive).count();
    let busy: usize = w.nodes.iter().map(|n| n.busy_cores).sum();
    let queued: usize = w.nodes.iter().map(|n| n.deque.len()).sum();
    let stealing = w.nodes.iter().filter(|n| n.stealing).count();
    let total_cores = (w.cfg.cores_per_node * w.cfg.nodes) as f64;
    cols.push(("alive".into(), alive as f64));
    cols.push(("crashes".into(), w.report.crashes as f64));
    cols.push(("joins".into(), w.report.joins as f64));
    cols.push(("busy_cores".into(), busy as f64));
    cols.push(("busy_frac".into(), busy as f64 / total_cores));
    cols.push(("queued_jobs".into(), queued as f64));
    cols.push(("stealing_nodes".into(), stealing as f64));
    cols.push(("steal_attempts".into(), w.report.steal_attempts as f64));
    cols.push(("steals_ok".into(), w.report.steals_ok as f64));
    cols.push(("steal_rate".into(), w.report.steal_success_rate()));
    let tx: u64 = w.nics.iter().map(|nic| nic.bytes_tx).sum();
    cols.push(("net_tx_bytes".into(), tx as f64));
    // Bytes still draining out of send queues: each NIC's TX backlog
    // (time until free) at line rate.
    let inflight: f64 = w
        .nics
        .iter()
        .map(|nic| nic.tx_free_at.saturating_sub(now).as_secs_f64() * w.cfg.net.bandwidth_gbs * 1e9)
        .sum();
    cols.push(("net_inflight_bytes".into(), inflight));
    cols.push(("orphan_results".into(), w.orphans.len() as f64));
    for (i, n) in w.nodes.iter().enumerate() {
        cols.push((format!("n{i}.busy"), n.busy_cores as f64));
        cols.push((format!("n{i}.queue"), n.deque.len() as f64));
    }
    // Runtime-specific gauges (Cashmere placement mix; no-op for CPU).
    w.leaf.probe(&mut cols);
    if let Some(p) = &mut w.probe {
        p.sample(now, &cols);
    }
}

fn schedule_tick<A: ClusterApp, L: LeafRuntime<A>>(
    w: &mut World<A, L>,
    sim: &mut S<A, L>,
    n: usize,
) {
    if w.nodes[n].tick_scheduled || !w.nodes[n].alive {
        return;
    }
    w.nodes[n].tick_scheduled = true;
    sim.schedule_now_as(
        "event::tick",
        move |w: &mut World<A, L>, sim: &mut S<A, L>| tick(w, sim, n),
    );
}

/// Node scheduler: start tasks while cores are free; steal when idle.
fn tick<A: ClusterApp, L: LeafRuntime<A>>(w: &mut World<A, L>, sim: &mut S<A, L>, n: usize) {
    w.nodes[n].tick_scheduled = false;
    if !w.nodes[n].alive || w.done {
        return;
    }
    while w.nodes[n].busy_cores < w.cfg.cores_per_node {
        // Find the most recent task this node may start: combines and
        // divides always may; leaves only while below the concurrency cap
        // (blocked leaves stay queued — and stealable). Recomputed every
        // round: each started leaf counts immediately.
        let leaf_ok = w.nodes[n].running_leaves < w.cfg.max_concurrent_leaves;
        let pick = w.nodes[n]
            .deque
            .iter()
            .enumerate()
            .rev()
            .find_map(|(i, t)| {
                let startable = match t {
                    Task::Combine(_) => true,
                    Task::Job(j) => {
                        if leaf_ok {
                            true
                        } else {
                            match &w.jobs[*j].input {
                                Some(input) => !w.app.is_leaf(input),
                                None => true,
                            }
                        }
                    }
                };
                startable.then_some(i)
            });
        let Some(idx) = pick else {
            break;
        };
        let task = w.nodes[n].deque.remove(idx).expect("index valid");
        match task {
            Task::Job(j) => start_job(w, sim, n, j),
            Task::Combine(j) => start_combine(w, sim, n, j),
        }
    }
    // Idle with no startable local work: steal from a random victim.
    if w.nodes[n].deque.is_empty()
        && w.nodes[n].busy_cores < w.cfg.cores_per_node
        && !w.nodes[n].stealing
        && !w.done
        && w.cfg.nodes > 1
    {
        initiate_steal(w, sim, n);
    }
}

/// The job's tree path: child indices from the root. Divides are
/// deterministic, so a re-executed subtree is isomorphic to the lost one
/// and the path identifies "the same job" across fresh records. O(depth),
/// computed only while the orphan table is non-empty.
fn path_of<A: ClusterApp, L: LeafRuntime<A>>(w: &World<A, L>, mut j: usize) -> Vec<u32> {
    let mut path = Vec::new();
    while let Some((p, idx)) = w.jobs[j].parent {
        path.push(idx as u32);
        j = p;
    }
    path.reverse();
    path
}

/// Salvage one completed result into the global result table.
fn stash_orphan<A: ClusterApp, L: LeafRuntime<A>>(
    w: &mut World<A, L>,
    key: Vec<u32>,
    output: A::Output,
    holder: usize,
) {
    let bytes = w.app.output_bytes(&output);
    w.orphans.insert(
        key,
        OrphanEntry {
            output,
            holder,
            bytes,
        },
    );
    w.report.orphans_harvested += 1;
}

/// Drop every table entry held by node `n` (it just crashed and physically
/// lost them).
fn expire_orphans_of<A: ClusterApp, L: LeafRuntime<A>>(w: &mut World<A, L>, n: usize) {
    let before = w.orphans.len();
    w.orphans.retain(|_, e| e.holder != n);
    w.report.orphans_expired += (before - w.orphans.len()) as u64;
}

/// A recovery episode ends when no crash-restarted subtree root is still
/// outstanding; the elapsed episode time accumulates into
/// `report.time_to_recover`.
fn note_recovery<A: ClusterApp, L: LeafRuntime<A>>(w: &mut World<A, L>, now: SimTime) {
    if w.recovery_outstanding.is_empty() {
        return;
    }
    let jobs = &w.jobs;
    w.recovery_outstanding.retain(|&r| {
        let s = jobs[r].state;
        s != JobState::Done && s != JobState::Lost
    });
    if w.recovery_outstanding.is_empty() {
        if let Some(since) = w.recovering_since.take() {
            w.report.time_to_recover += now - since;
        }
    }
}

fn start_job<A: ClusterApp, L: LeafRuntime<A>>(
    w: &mut World<A, L>,
    sim: &mut S<A, L>,
    n: usize,
    j: usize,
) {
    if w.jobs[j].state != JobState::Queued {
        return; // stale (crash reset)
    }
    // Reuse-first recovery: before spending a core, probe the global result
    // table. A hit means a crashed subtree's result survived on some node —
    // consume it (exactly once), charge the fetch to the network if it is
    // remote, and deliver it through the ordinary result path instead of
    // re-executing the subtree. The empty-table guard keeps fault-free runs
    // on the exact original code path.
    if w.cfg.orphan_reuse && !w.orphans.is_empty() {
        let key = path_of(w, j);
        if let Some(entry) = w.orphans.remove(&key) {
            let OrphanEntry {
                output,
                holder,
                bytes,
            } = entry;
            w.report.orphans_reused += 1;
            w.jobs[j].state = JobState::Running;
            w.jobs[j].exec_node = n;
            let generation = w.jobs[j].generation;
            if holder == n {
                // Local table hit: a lookup costs one job overhead.
                sim.schedule_in_as(
                    "event::deliver",
                    w.cfg.job_overhead,
                    move |w: &mut World<A, L>, sim: &mut S<A, L>| {
                        if !w.nodes[n].alive {
                            return;
                        }
                        deliver(w, sim, n, j, output, generation);
                    },
                );
            } else {
                // Remote hit: fetch the result from its holder. The result
                // table is master-mediated bookkeeping; the fetch itself is
                // modelled as a reliable transfer (retransmission of table
                // traffic is below the model's resolution).
                let (src_busy, dst_busy) = (w.busy_fraction(holder), w.busy_fraction(n));
                let (lo, hi) = (holder.min(n), holder.max(n));
                let (first, second) = w.nics.split_at_mut(hi);
                let (src, dst) = if holder < n {
                    (&mut first[lo], &mut second[0])
                } else {
                    (&mut second[0], &mut first[lo])
                };
                let tr =
                    schedule_transfer(&w.cfg.net, sim.now(), src, dst, bytes, src_busy, dst_busy);
                w.report.bytes_orphans += bytes;
                if sim.trace.enabled() {
                    sim.trace.record_child(
                        w.nodes[n].net_lane,
                        SpanKind::Network,
                        "orphan-fetch",
                        tr.start,
                        tr.arrival,
                        w.jobs[j].origin_span,
                    );
                }
                sim.metrics.observe("net.transfer", tr.duration());
                sim.schedule_at_as(
                    "event::deliver",
                    tr.arrival,
                    move |w: &mut World<A, L>, sim: &mut S<A, L>| {
                        if !w.nodes[n].alive {
                            return;
                        }
                        deliver(w, sim, n, j, output, generation);
                    },
                );
            }
            return;
        }
    }
    w.jobs[j].state = JobState::Running;
    w.jobs[j].exec_node = n;
    w.nodes[n].busy_cores += 1;
    note_busy_cores(w, sim, n);
    w.nodes[n].steal_failures = 0;
    // Leaves count against the concurrency cap from the moment they grab a
    // core, not when their plan runs (which is a job-overhead later).
    let is_leaf = w.jobs[j].input.as_ref().is_some_and(|i| w.app.is_leaf(i));
    if is_leaf {
        w.nodes[n].running_leaves += 1;
    }
    let generation = w.jobs[j].generation;
    let inc = w.nodes[n].incarnation;
    let overhead = w.cfg.job_overhead;
    sim.schedule_in_as(
        "event::process-job",
        overhead,
        move |w: &mut World<A, L>, sim: &mut S<A, L>| {
            process_job(w, sim, n, j, generation, inc, is_leaf);
        },
    );
}

#[allow(clippy::too_many_arguments)]
fn process_job<A: ClusterApp, L: LeafRuntime<A>>(
    w: &mut World<A, L>,
    sim: &mut S<A, L>,
    n: usize,
    j: usize,
    generation: u64,
    inc: u64,
    is_leaf: bool,
) {
    // An incarnation mismatch means the node crashed (and possibly
    // rejoined) since this event was scheduled: its core accounting was
    // rebuilt from zero, so do not release anything.
    if !w.nodes[n].alive || w.nodes[n].incarnation != inc {
        return;
    }
    if w.jobs[j].generation != generation {
        // The job was reset by a crash while we held the core.
        if is_leaf {
            w.nodes[n].running_leaves -= 1;
        }
        release_core(w, sim, n);
        return;
    }
    let input = w.jobs[j].input.clone().expect("running job has input");
    match w.app.step(&input) {
        DcStep::Divide(children) => {
            let cost = w.app.divide_cost(&input);
            let start = sim.now() - w.cfg.job_overhead;
            if sim.trace.enabled() {
                w.jobs[j].divide_span = sim.trace.record_child(
                    w.nodes[n].cpu_lane,
                    SpanKind::CpuTask,
                    "divide",
                    start,
                    sim.now() + cost,
                    w.jobs[j].origin_span,
                );
            }
            sim.schedule_in_as(
                "event::finish-divide",
                cost,
                move |w: &mut World<A, L>, sim: &mut S<A, L>| {
                    if !w.nodes[n].alive || w.nodes[n].incarnation != inc {
                        return;
                    }
                    if w.jobs[j].generation != generation {
                        release_core(w, sim, n);
                        return;
                    }
                    finish_divide(w, sim, n, j, children);
                },
            );
        }
        DcStep::Leaf => {
            debug_assert!(is_leaf, "is_leaf must agree with step()");
            let lane = w.nodes[n].cpu_lane;
            let replay = w.jobs[j].replay;
            w.report.leaves += 1;
            // The leaf span is recorded up front (with a provisional end) so
            // the device activity planned inside it can parent to it; the
            // real end is patched in below once the plan is known.
            let leaf_start = sim.now() - w.cfg.job_overhead;
            let leaf_span = sim.trace.record_child(
                lane,
                SpanKind::CpuTask,
                "leaf",
                leaf_start,
                sim.now(),
                w.jobs[j].origin_span,
            );
            let plan = {
                let World {
                    leaf,
                    app,
                    faults,
                    report,
                    ..
                } = w;
                leaf.plan(
                    app,
                    &input,
                    LeafCtx {
                        node: n,
                        now: sim.now(),
                        trace: &mut sim.trace,
                        metrics: &mut sim.metrics,
                        cpu_lane: lane,
                        parent_span: leaf_span,
                        faults,
                        report,
                    },
                )
            };
            if replay {
                // Leaf work repeated because of a failure is recovery cost.
                let cost = match &plan {
                    LeafPlan::Cpu { compute, .. } => *compute,
                    LeafPlan::Async { done, .. } => done.saturating_sub(sim.now()),
                };
                w.report.recovery_time += cost;
            }
            match plan {
                LeafPlan::Cpu { compute, output } => {
                    sim.trace.set_end(leaf_span, sim.now() + compute);
                    w.report.node_busy[n] += compute;
                    sim.schedule_in_as(
                        "event::leaf-done",
                        compute,
                        move |w: &mut World<A, L>, sim: &mut S<A, L>| {
                            if !w.nodes[n].alive || w.nodes[n].incarnation != inc {
                                return;
                            }
                            w.nodes[n].running_leaves -= 1;
                            release_core(w, sim, n);
                            deliver(w, sim, n, j, output, generation);
                        },
                    );
                }
                LeafPlan::Async {
                    submit,
                    done,
                    output,
                } => {
                    sim.trace.set_end(leaf_span, done.max(sim.now()));
                    w.report.node_busy[n] += done.saturating_sub(sim.now());
                    sim.schedule_in_as(
                        "event::leaf-submit",
                        submit,
                        move |w: &mut World<A, L>, sim: &mut S<A, L>| {
                            if !w.nodes[n].alive || w.nodes[n].incarnation != inc {
                                return;
                            }
                            release_core(w, sim, n);
                        },
                    );
                    let at = done.max(sim.now());
                    sim.schedule_at_as(
                        "event::leaf-done",
                        at,
                        move |w: &mut World<A, L>, sim: &mut S<A, L>| {
                            if !w.nodes[n].alive || w.nodes[n].incarnation != inc {
                                return;
                            }
                            w.nodes[n].running_leaves -= 1;
                            schedule_tick(w, sim, n);
                            deliver(w, sim, n, j, output, generation);
                        },
                    );
                }
            }
        }
    }
}

fn finish_divide<A: ClusterApp, L: LeafRuntime<A>>(
    w: &mut World<A, L>,
    sim: &mut S<A, L>,
    n: usize,
    j: usize,
    children: Vec<A::Input>,
) {
    assert!(!children.is_empty(), "divide produced no children");
    w.report.divides += 1;
    let count = children.len();
    let replay = w.jobs[j].replay;
    w.jobs[j].state = JobState::Waiting;
    w.jobs[j].pending = count;
    w.jobs[j].child_outputs = vec![None; count];
    w.jobs[j].children.clear();
    let divide_span = w.jobs[j].divide_span;
    for (idx, input) in children.into_iter().enumerate() {
        let c = w.new_job(input, Some((j, idx)), n);
        // A restarted subtree re-divides into fresh records; mark them so
        // their leaf compute is accounted as recovery cost.
        w.jobs[c].replay = replay;
        w.jobs[c].origin_span = divide_span;
        w.jobs[j].children.push(c);
        w.nodes[n].deque.push_back(Task::Job(c));
    }
    release_core(w, sim, n);
    schedule_tick(w, sim, n);
}

fn release_core<A: ClusterApp, L: LeafRuntime<A>>(
    w: &mut World<A, L>,
    sim: &mut S<A, L>,
    n: usize,
) {
    debug_assert!(w.nodes[n].busy_cores > 0);
    w.nodes[n].busy_cores -= 1;
    note_busy_cores(w, sim, n);
    schedule_tick(w, sim, n);
}

/// A leaf/combined output is ready on node `n` for job `j`.
fn deliver<A: ClusterApp, L: LeafRuntime<A>>(
    w: &mut World<A, L>,
    sim: &mut S<A, L>,
    n: usize,
    j: usize,
    output: A::Output,
    generation: u64,
) {
    if w.jobs[j].generation != generation || w.jobs[j].state == JobState::Lost {
        // A late orphan result: the subtree completed, but its record was
        // reset by a crash in the meantime. Report the result to the global
        // table so the re-executed copy can reuse it instead of recomputing
        // the whole subtree.
        if w.cfg.orphan_reuse && !w.done && w.nodes[n].alive {
            stash_orphan(w, path_of(w, j), output, n);
        }
        return;
    }
    w.jobs[j].state = JobState::Done;
    w.jobs[j].input = None;
    note_recovery(w, sim.now());
    match w.jobs[j].parent {
        None => {
            w.root_result = Some(output);
            w.done = true;
            // The run is over: whatever the result table still holds was
            // never needed.
            w.report.orphans_expired += w.orphans.len() as u64;
            w.orphans.clear();
            // Cancel trailing steal polls and timeouts: the run is over and
            // their only effect would be to advance the virtual clock.
            for node in 0..w.cfg.nodes {
                if let Some(h) = w.nodes[node].retry_event.take() {
                    sim.cancel(h);
                }
                if let Some(h) = w.nodes[node].steal_timeout_event.take() {
                    sim.cancel(h);
                }
                w.nodes[node].stealing = false;
            }
            // Likewise the pending flight-recorder probe: sampling must not
            // advance the clock past the real finish.
            if let Some(h) = w.probe_event.take() {
                sim.cancel(h);
            }
        }
        Some((p, idx)) => {
            let home = w.jobs[p].home_node;
            if home == n {
                receive_child(w, sim, p, idx, output, w.jobs[p].generation);
            } else {
                let pgen = w.jobs[p].generation;
                send_result(w, sim, n, home, p, idx, output, pgen, 0);
            }
        }
    }
}

/// Return a child output over the network to the parent's node. A lost
/// message is retransmitted with bounded exponential backoff; fault windows
/// are finite, so the loop always terminates.
#[allow(clippy::too_many_arguments)]
fn send_result<A: ClusterApp, L: LeafRuntime<A>>(
    w: &mut World<A, L>,
    sim: &mut S<A, L>,
    n: usize,
    home: usize,
    p: usize,
    idx: usize,
    output: A::Output,
    pgen: u64,
    attempt: u32,
) {
    if !w.nodes[n].alive {
        // Sender crashed before (re)transmitting; its copy of the result is
        // gone and recovery re-executes the subtree.
        return;
    }
    if w.jobs[p].generation != pgen {
        // The parent was reset by a crash, but the sender still holds the
        // finished child result: salvage it into the global result table
        // for the re-executed tree to pick up.
        if w.cfg.orphan_reuse && !w.done {
            let mut key = path_of(w, p);
            key.push(idx as u32);
            stash_orphan(w, key, output, n);
        }
        return;
    }
    let bytes = w.app.output_bytes(&output);
    let (src_busy, dst_busy) = (w.busy_fraction(n), w.busy_fraction(home));
    let (lo, hi) = (n.min(home), n.max(home));
    let (first, second) = w.nics.split_at_mut(hi);
    let (src, dst) = if n < home {
        (&mut first[lo], &mut second[0])
    } else {
        (&mut second[0], &mut first[lo])
    };
    let tr = schedule_transfer(&w.cfg.net, sim.now(), src, dst, bytes, src_busy, dst_busy);
    w.report.bytes_results += bytes;
    if sim.trace.enabled() {
        sim.trace.record_child(
            w.nodes[n].net_lane,
            SpanKind::Network,
            if attempt == 0 {
                "result"
            } else {
                "result-retx"
            },
            tr.start,
            tr.arrival,
            w.jobs[p].divide_span,
        );
    }
    sim.metrics.observe("net.transfer", tr.duration());
    match w.faults.message_fate(n, home, sim.now()) {
        MessageFate::Dropped => {
            w.report.messages_lost += 1;
            w.report.result_retransmits += 1;
            // The sender notices the missing acknowledgement and resends.
            let backoff =
                (w.cfg.steal_retry * (1u64 << attempt.min(20))).min(w.cfg.steal_retry_max);
            sim.schedule_at_as(
                "event::send-result",
                tr.arrival + backoff,
                move |w: &mut World<A, L>, sim: &mut S<A, L>| {
                    send_result(w, sim, n, home, p, idx, output, pgen, attempt + 1);
                },
            );
        }
        MessageFate::Delivered { delay } => {
            if delay > SimTime::ZERO {
                w.report.latency_spikes += 1;
            }
            sim.schedule_at_as(
                "event::receive-child",
                tr.arrival + delay,
                move |w: &mut World<A, L>, sim: &mut S<A, L>| {
                    if !w.nodes[home].alive {
                        // The parent's node died while the result was in
                        // flight; the sender still holds it — salvage.
                        if w.cfg.orphan_reuse && !w.done && w.nodes[n].alive {
                            let mut key = path_of(w, p);
                            key.push(idx as u32);
                            stash_orphan(w, key, output, n);
                        }
                        return;
                    }
                    receive_child(w, sim, p, idx, output, pgen);
                },
            );
        }
    }
}

fn receive_child<A: ClusterApp, L: LeafRuntime<A>>(
    w: &mut World<A, L>,
    sim: &mut S<A, L>,
    p: usize,
    idx: usize,
    output: A::Output,
    pgen: u64,
) {
    if w.jobs[p].generation != pgen || w.jobs[p].state != JobState::Waiting {
        return;
    }
    if w.jobs[p].child_outputs[idx].is_some() {
        return; // duplicate after re-execution
    }
    w.jobs[p].child_outputs[idx] = Some(output);
    w.jobs[p].pending -= 1;
    if w.jobs[p].pending == 0 {
        let home = w.jobs[p].home_node;
        w.nodes[home].deque.push_back(Task::Combine(p));
        schedule_tick(w, sim, home);
    }
}

fn start_combine<A: ClusterApp, L: LeafRuntime<A>>(
    w: &mut World<A, L>,
    sim: &mut S<A, L>,
    n: usize,
    p: usize,
) {
    if w.jobs[p].state != JobState::Waiting || w.jobs[p].pending != 0 {
        return; // stale
    }
    w.nodes[n].busy_cores += 1;
    note_busy_cores(w, sim, n);
    let generation = w.jobs[p].generation;
    let inc = w.nodes[n].incarnation;
    let input = w.jobs[p].input.clone().expect("waiting job has input");
    let cost = w.app.combine_cost(&input);
    if sim.trace.enabled() {
        sim.trace.record_child(
            w.nodes[n].cpu_lane,
            SpanKind::CpuTask,
            "combine",
            sim.now(),
            sim.now() + cost,
            w.jobs[p].divide_span,
        );
    }
    sim.schedule_in_as(
        "event::combine",
        cost,
        move |w: &mut World<A, L>, sim: &mut S<A, L>| {
            if !w.nodes[n].alive || w.nodes[n].incarnation != inc {
                return;
            }
            if w.jobs[p].generation != generation {
                release_core(w, sim, n);
                return;
            }
            let outputs: Vec<A::Output> = w.jobs[p]
                .child_outputs
                .iter_mut()
                .map(|o| o.take().expect("all children delivered"))
                .collect();
            let input = w.jobs[p].input.clone().expect("combining job has input");
            let output = w.app.combine(&input, outputs);
            release_core(w, sim, n);
            deliver(w, sim, n, p, output, generation);
        },
    );
}

/// Current retry delay for a thief: base rate for the first three
/// consecutive failures, then doubling up to the configured cap.
fn steal_backoff<A: ClusterApp, L: LeafRuntime<A>>(w: &World<A, L>, thief: usize) -> SimTime {
    let failures = w.nodes[thief].steal_failures;
    let doublings = failures.saturating_sub(3).min(30);
    (w.cfg.steal_retry * (1u64 << doublings)).min(w.cfg.steal_retry_max)
}

/// The thief's outstanding steal attempt is over (success, refusal,
/// timeout, or crash): clear the flag, invalidate in-flight events keyed on
/// the old sequence number, and disarm the timeout.
fn resolve_steal<A: ClusterApp, L: LeafRuntime<A>>(
    w: &mut World<A, L>,
    sim: &mut S<A, L>,
    thief: usize,
) {
    w.nodes[thief].stealing = false;
    w.nodes[thief].steal_seq += 1;
    if let Some(h) = w.nodes[thief].steal_timeout_event.take() {
        sim.cancel(h);
    }
}

fn initiate_steal<A: ClusterApp, L: LeafRuntime<A>>(
    w: &mut World<A, L>,
    sim: &mut S<A, L>,
    thief: usize,
) {
    // Ask the configured steal policy for a live victim. Field borrows are
    // split so the policy can read liveness while drawing from the steal
    // rng stream.
    let victim = {
        let World {
            steal,
            rng,
            nodes,
            cfg,
            ..
        } = w;
        let alive = |v: usize| nodes[v].alive;
        steal.pick_victim(thief, cfg.nodes, &alive, rng)
    };
    let Some(victim) = victim else {
        // No live victim found (most nodes crashed): poll again later with
        // bounded exponential backoff — each fruitless poll counts as a
        // steal failure so a mostly-dead cluster is not busy-polled at the
        // base rate forever (a rejoining node wakes everyone via its tick).
        w.report.no_victim_polls += 1;
        w.nodes[thief].steal_failures = w.nodes[thief].steal_failures.saturating_add(1);
        let retry = steal_backoff(w, thief);
        let h = sim.schedule_in_as(
            "event::steal-retry",
            retry,
            move |w: &mut World<A, L>, sim: &mut S<A, L>| {
                w.nodes[thief].retry_event = None;
                if !w.done && w.nodes[thief].alive {
                    schedule_tick(w, sim, thief);
                }
            },
        );
        w.nodes[thief].retry_event = Some(h);
        return;
    };
    debug_assert!(victim != thief && w.nodes[victim].alive);
    if w.cfg.trace {
        w.victim_log.push((thief, victim));
    }
    w.nodes[thief].stealing = true;
    w.nodes[thief].steal_seq += 1;
    w.nodes[thief].steal_started = sim.now();
    let token = w.nodes[thief].steal_seq;
    w.report.steal_attempts += 1;
    // Steal request: a small message, subject to CPU contention on both ends.
    let mut req_time = w.cfg.net.wire_time(64)
        + w.cfg.net.handling_time(w.busy_fraction(thief))
        + w.cfg.net.handling_time(w.busy_fraction(victim));
    match w.faults.message_fate(thief, victim, sim.now()) {
        MessageFate::Dropped => {
            // The request vanishes; the timeout below recovers the thief.
            w.report.messages_lost += 1;
        }
        MessageFate::Delivered { delay } => {
            if delay > SimTime::ZERO {
                w.report.latency_spikes += 1;
                req_time += delay;
            }
            sim.schedule_in_as(
                "event::steal",
                req_time,
                move |w: &mut World<A, L>, sim: &mut S<A, L>| {
                    handle_steal_request(w, sim, victim, thief);
                },
            );
        }
    }
    // With faults in play, a request or refusal may never arrive. Arm a
    // timeout that abandons the attempt and retries with backoff. Fault-free
    // runs skip this entirely, so they schedule exactly the same events as
    // a build without fault support.
    if w.faults.is_active() {
        let h = sim.schedule_in_as(
            "event::steal-timeout",
            w.cfg.steal_timeout,
            move |w: &mut World<A, L>, sim: &mut S<A, L>| {
                w.nodes[thief].steal_timeout_event = None;
                if w.done
                    || !w.nodes[thief].alive
                    || !w.nodes[thief].stealing
                    || w.nodes[thief].steal_seq != token
                {
                    return;
                }
                resolve_steal(w, sim, thief);
                w.report.steal_timeouts += 1;
                w.nodes[thief].steal_failures = w.nodes[thief].steal_failures.saturating_add(1);
                let retry = steal_backoff(w, thief);
                let h = sim.schedule_in_as(
                    "event::steal-retry",
                    retry,
                    move |w: &mut World<A, L>, sim: &mut S<A, L>| {
                        w.nodes[thief].retry_event = None;
                        if !w.done && w.nodes[thief].alive {
                            schedule_tick(w, sim, thief);
                        }
                    },
                );
                w.nodes[thief].retry_event = Some(h);
            },
        );
        w.nodes[thief].steal_timeout_event = Some(h);
    }
}

fn handle_steal_request<A: ClusterApp, L: LeafRuntime<A>>(
    w: &mut World<A, L>,
    sim: &mut S<A, L>,
    victim: usize,
    thief: usize,
) {
    if w.done || !w.nodes[thief].alive {
        resolve_steal(w, sim, thief);
        return;
    }
    if !w.nodes[thief].stealing {
        // The thief already gave up on this attempt (timeout) and owns a
        // fresh retry; a late request must not disturb it.
        return;
    }
    let token = w.nodes[thief].steal_seq;
    // Steal from the FIFO end: the oldest (largest) job. Combines stay
    // home. Stale entries (a crash-restart requeues a job at its home
    // while an old deque entry survives elsewhere; the fresh copy may
    // already have run) are skipped — `start_job` skips them too.
    let stolen = if w.nodes[victim].alive {
        let pos = w.nodes[victim].deque.iter().position(|t| {
            matches!(t, Task::Job(j) if w.jobs[*j].state == JobState::Queued
                && w.jobs[*j].input.is_some())
        });
        pos.and_then(|p| w.nodes[victim].deque.remove(p))
    } else {
        None
    };
    match stolen {
        Some(Task::Job(j)) => {
            w.report.steals_ok += 1;
            w.steal.on_steal_ok(thief, victim);
            let input = w.jobs[j].input.as_ref().expect("queued job has input");
            let bytes = w.app.input_bytes(input);
            let (src_busy, dst_busy) = (w.busy_fraction(victim), w.busy_fraction(thief));
            let (lo, hi) = (victim.min(thief), victim.max(thief));
            let (first, second) = w.nics.split_at_mut(hi);
            let (src, dst) = if victim < thief {
                (&mut first[lo], &mut second[0])
            } else {
                (&mut second[0], &mut first[lo])
            };
            let tr = schedule_transfer(&w.cfg.net, sim.now(), src, dst, bytes, src_busy, dst_busy);
            w.report.bytes_stolen += bytes;
            if sim.trace.enabled() {
                // The steal span becomes the job's new origin: everything
                // the job does on the thief chains through it, which is what
                // draws the cross-node flow arrow in the Chrome export.
                let steal_span = sim.trace.record_child(
                    w.nodes[thief].net_lane,
                    SpanKind::Steal,
                    "steal",
                    tr.start,
                    tr.arrival,
                    w.jobs[j].origin_span,
                );
                w.jobs[j].origin_span = steal_span;
            }
            let generation = w.jobs[j].generation;
            let thief_inc = w.nodes[thief].incarnation;
            // The handshake succeeded; only the bulk transfer remains. The
            // timeout covered the request/reply phase, so disarm it (no-op
            // in fault-free runs, which never arm one).
            if let Some(h) = w.nodes[thief].steal_timeout_event.take() {
                sim.cancel(h);
            }
            match w.faults.message_fate(victim, thief, sim.now()) {
                MessageFate::Dropped => {
                    // The job data is lost in transit — and the job left the
                    // victim's deque, so nobody else knows about it. When the
                    // transfer window elapses unacknowledged, the victim
                    // re-queues the job on a live node.
                    w.report.messages_lost += 1;
                    sim.schedule_at_as(
                        "event::steal-transfer",
                        tr.arrival,
                        move |w: &mut World<A, L>, sim: &mut S<A, L>| {
                            if w.nodes[thief].steal_seq == token && w.nodes[thief].stealing {
                                resolve_steal(w, sim, thief);
                                w.nodes[thief].steal_failures =
                                    w.nodes[thief].steal_failures.saturating_add(1);
                                if w.nodes[thief].alive && !w.done {
                                    schedule_tick(w, sim, thief);
                                }
                            }
                            if w.done || w.jobs[j].generation != generation {
                                return;
                            }
                            let home = w.jobs[j].home_node;
                            let target = if w.nodes[victim].alive {
                                victim
                            } else if w.nodes[home].alive {
                                home
                            } else {
                                0
                            };
                            w.jobs[j].exec_node = target;
                            w.nodes[target].deque.push_back(Task::Job(j));
                            schedule_tick(w, sim, target);
                        },
                    );
                }
                MessageFate::Delivered { delay } => {
                    if delay > SimTime::ZERO {
                        w.report.latency_spikes += 1;
                    }
                    let arrival = tr.arrival + delay;
                    sim.schedule_at_as(
                        "event::steal-transfer",
                        arrival,
                        move |w: &mut World<A, L>, sim: &mut S<A, L>| {
                            if w.nodes[thief].steal_seq == token && w.nodes[thief].stealing {
                                let rtt = sim.now() - w.nodes[thief].steal_started;
                                sim.metrics.observe("steal.rtt", rtt);
                                resolve_steal(w, sim, thief);
                                w.nodes[thief].steal_failures = 0;
                            }
                            if w.jobs[j].generation != generation {
                                return;
                            }
                            if !w.nodes[thief].alive || w.nodes[thief].incarnation != thief_inc {
                                // The thief died while the job was in flight
                                // (and perhaps already rebooted — the transfer's
                                // connection died with the old incarnation). The
                                // job left the victim's deque, so nobody else
                                // knows about it — bounce it back to a live node
                                // or it is lost and the run never terminates.
                                let home = w.jobs[j].home_node;
                                let target = if w.nodes[home].alive { home } else { 0 };
                                w.jobs[j].exec_node = target;
                                w.nodes[target].deque.push_back(Task::Job(j));
                                w.jobs[j].replay = true;
                                w.report.jobs_restarted += 1;
                                schedule_tick(w, sim, target);
                                return;
                            }
                            w.jobs[j].exec_node = thief;
                            w.nodes[thief].deque.push_back(Task::Job(j));
                            schedule_tick(w, sim, thief);
                        },
                    );
                }
            }
        }
        _ => {
            w.steal.on_steal_fail(thief, victim);
            // Nothing to steal: small refusal message, then retry. The first
            // few consecutive failures retry at the base rate (responsive
            // during normal imbalance); sustained failure — the idle tail of
            // a run — backs off exponentially so a long tail does not flood
            // the event queue with poll events.
            let mut reply = w.cfg.net.wire_time(32);
            match w.faults.message_fate(victim, thief, sim.now()) {
                MessageFate::Dropped => {
                    // The refusal never reaches the thief; its steal timeout
                    // recovers the attempt.
                    w.report.messages_lost += 1;
                    return;
                }
                MessageFate::Delivered { delay } => {
                    if delay > SimTime::ZERO {
                        w.report.latency_spikes += 1;
                        reply += delay;
                    }
                    // The refusal will arrive: disarm the timeout so a long
                    // retry backoff is not misread as a lost reply.
                    if let Some(h) = w.nodes[thief].steal_timeout_event.take() {
                        sim.cancel(h);
                    }
                }
            }
            // Back off only when no node in the cluster has stealable work
            // (the idle tail / drain phase): a random victim simply being
            // empty while others still have jobs keeps the base poll rate.
            let any_work = w
                .nodes
                .iter()
                .any(|n| n.alive && n.deque.iter().any(|t| matches!(t, Task::Job(_))));
            if any_work {
                w.nodes[thief].steal_failures = 0;
            } else {
                w.nodes[thief].steal_failures = w.nodes[thief].steal_failures.saturating_add(1);
            }
            let retry = steal_backoff(w, thief);
            let h = sim.schedule_in_as(
                "event::steal-retry",
                reply + retry,
                move |w: &mut World<A, L>, sim: &mut S<A, L>| {
                    w.nodes[thief].retry_event = None;
                    if w.nodes[thief].steal_seq == token && w.nodes[thief].stealing {
                        resolve_steal(w, sim, thief);
                    }
                    if !w.done && w.nodes[thief].alive {
                        schedule_tick(w, sim, thief);
                    }
                },
            );
            w.nodes[thief].retry_event = Some(h);
        }
    }
}

/// Crash node `n`: it stops participating and every job it was executing or
/// queueing is re-executed from a healthy node, exactly in the spirit of
/// Satin's orphan-job recovery.
fn crash<A: ClusterApp, L: LeafRuntime<A>>(w: &mut World<A, L>, sim: &mut S<A, L>, n: usize) {
    if !w.nodes[n].alive {
        return;
    }
    w.nodes[n].alive = false;
    w.nodes[n].deque.clear();
    w.nodes[n].busy_cores = 0;
    w.nodes[n].running_leaves = 0;
    note_busy_cores(w, sim, n);
    // Dead nodes fire no timers; drop their pending steal events so stale
    // no-op polls cannot advance the clock past the real finish.
    if let Some(h) = w.nodes[n].retry_event.take() {
        sim.cancel(h);
    }
    if let Some(h) = w.nodes[n].steal_timeout_event.take() {
        sim.cancel(h);
    }
    w.nodes[n].stealing = false;
    w.nodes[n].steal_failures = 0;
    w.nodes[n].steal_seq += 1;
    w.nodes[n].incarnation += 1;
    // The crashed node leaves every victim set; stateful steal policies
    // (e.g. recent-victim caches) invalidate here, in the one place
    // cluster membership shrinks.
    w.steal.on_crash(n);
    w.report.crashes += 1;
    // Per-node leaf-runtime state (device timelines, pending device jobs,
    // resident buffers) dies with the node.
    w.leaf.on_node_crash(n, sim.now());
    // Table entries physically held by the crashed node are gone.
    if w.cfg.orphan_reuse {
        expire_orphans_of(w, n);
    }

    // Restart roots: jobs whose record lives on a healthy node but whose
    // execution was on (or under) the crashed node.
    let mut restart = Vec::new();
    for j in 0..w.jobs.len() {
        let rec = &w.jobs[j];
        if rec.state == JobState::Done || rec.state == JobState::Lost {
            continue;
        }
        let on_crashed = rec.exec_node == n || rec.home_node == n;
        if !on_crashed {
            continue;
        }
        // Walk up to the first ancestor whose record lives on a healthy
        // node (with multiple failures the home may be a *different* dead
        // node — keep climbing; the root's home is the master, which
        // cannot crash).
        let mut cur = j;
        loop {
            let rec = &w.jobs[cur];
            if rec.home_node != n && w.nodes[rec.home_node].alive {
                restart.push(cur);
                break;
            }
            match rec.parent {
                Some((p, _)) => cur = p,
                None => {
                    restart.push(cur);
                    break;
                }
            }
        }
    }
    restart.sort_unstable();
    restart.dedup();
    // Keep only the topmost restart roots (drop any that is a descendant of
    // another restart root).
    let is_descendant = |w: &World<A, L>, mut x: usize, anc: usize| -> bool {
        while let Some((p, _)) = w.jobs[x].parent {
            if p == anc {
                return true;
            }
            x = p;
        }
        false
    };
    let roots: Vec<usize> = restart
        .iter()
        .copied()
        .filter(|&r| !restart.iter().any(|&a| a != r && is_descendant(w, r, a)))
        .collect();

    let crashed_any_root = !roots.is_empty();
    for r in roots {
        // Before discarding the subtree, salvage what survived: every
        // already-delivered child output held in a Waiting record whose
        // home node is alive is a completed subtree result the re-executed
        // tree can reuse instead of recomputing (Satin's global result
        // table). The crashed node's own holdings are skipped — they died
        // with it.
        if w.cfg.orphan_reuse {
            let mut scan = vec![r];
            while let Some(q) = scan.pop() {
                scan.extend(w.jobs[q].children.iter().copied());
                if w.jobs[q].state != JobState::Waiting {
                    continue;
                }
                let holder = w.jobs[q].home_node;
                if holder == n || !w.nodes[holder].alive {
                    continue;
                }
                let base = path_of(w, q);
                for idx in 0..w.jobs[q].child_outputs.len() {
                    if let Some(out) = w.jobs[q].child_outputs[idx].clone() {
                        let mut key = base.clone();
                        key.push(idx as u32);
                        stash_orphan(w, key, out, holder);
                    }
                }
            }
        }
        // Discard the subtree below r and re-queue r at its home node.
        let mut stack: Vec<usize> = w.jobs[r].children.clone();
        while let Some(c) = stack.pop() {
            stack.extend(w.jobs[c].children.iter().copied());
            w.jobs[c].state = JobState::Lost;
            w.jobs[c].generation += 1;
            w.jobs[c].input = None;
        }
        let home = w.jobs[r].home_node;
        debug_assert!(
            w.nodes[home].alive,
            "restart root must live on a healthy node"
        );
        w.jobs[r].children.clear();
        w.jobs[r].child_outputs.clear();
        w.jobs[r].pending = 0;
        w.jobs[r].generation += 1;
        w.jobs[r].state = JobState::Queued;
        w.jobs[r].exec_node = home;
        w.jobs[r].replay = true;
        w.report.jobs_restarted += 1;
        if !w.recovery_outstanding.contains(&r) {
            w.recovery_outstanding.push(r);
        }
        w.nodes[home].deque.push_back(Task::Job(r));
        schedule_tick(w, sim, home);
    }
    if crashed_any_root {
        // A new recovery episode begins (or the current one widens). Roots
        // superseded by this crash just went Lost — drop them first.
        note_recovery(w, sim.now());
        if !w.recovery_outstanding.is_empty() && w.recovering_since.is_none() {
            w.recovering_since = Some(sim.now());
        }
    }
    // Wake everyone: sudden loss of a victim must not deadlock thieves.
    for k in 0..w.cfg.nodes {
        if w.nodes[k].alive {
            schedule_tick(w, sim, k);
        }
    }
}

/// Node `n` (re)joins the cluster: it comes up empty — clean deque, fresh
/// steal state, a fresh NIC — re-registers its leaf-runtime devices, and
/// immediately re-enters steal victim sets (victim selection only checks
/// liveness). Joining an already-live node is a no-op.
fn join<A: ClusterApp, L: LeafRuntime<A>>(w: &mut World<A, L>, sim: &mut S<A, L>, n: usize) {
    if w.nodes[n].alive {
        return;
    }
    w.nodes[n].alive = true;
    w.nodes[n].deque.clear();
    w.nodes[n].busy_cores = 0;
    w.nodes[n].running_leaves = 0;
    w.nodes[n].stealing = false;
    w.nodes[n].steal_failures = 0;
    w.nodes[n].steal_seq += 1;
    w.nodes[n].steal_started = SimTime::ZERO;
    // A rebooted node has no half-open connections: reset its NIC.
    w.nics[n] = NodeNic::default();
    w.steal.on_join(n);
    w.report.joins += 1;
    note_busy_cores(w, sim, n);
    // Bring the node's leaf runtime back up (re-register devices, rebuild
    // its balancer).
    w.leaf.on_node_join(n, sim.now());
    if !w.done {
        // Wake everyone: backed-off thieves should notice the new victim
        // promptly, and the joiner itself starts stealing.
        for k in 0..w.cfg.nodes {
            if w.nodes[k].alive {
                schedule_tick(w, sim, k);
            }
        }
    }
}
