//! Simulated-cluster backend of Satin (used for every paper experiment).

pub mod app;
pub mod engine;
pub mod report;
pub mod steal;

pub use app::{ClusterApp, CpuLeafRuntime, DcStep, LeafCtx, LeafPlan, LeafRuntime};
pub use engine::{ClusterSim, SimConfig, World};
pub use report::{critical_path_summary, text_table, RunReport};
pub use steal::{build_steal_policy, StealKind, StealPolicy};

#[cfg(test)]
mod tests {
    use super::*;
    use cashmere_des::SimTime;

    /// Divide-and-conquer range sum, the canonical Fig. 1 shape.
    struct SumApp {
        grain: u64,
    }

    impl ClusterApp for SumApp {
        type Input = (u64, u64);
        type Output = u64;

        fn step(&self, &(lo, hi): &(u64, u64)) -> DcStep<(u64, u64)> {
            if hi - lo <= self.grain {
                DcStep::Leaf
            } else {
                let mid = lo + (hi - lo) / 2;
                DcStep::Divide(vec![(lo, mid), (mid, hi)])
            }
        }

        fn combine(&self, _i: &(u64, u64), children: Vec<u64>) -> u64 {
            children.into_iter().sum()
        }

        fn input_bytes(&self, _i: &(u64, u64)) -> u64 {
            // pretend each job ships a small input block
            4096
        }

        fn output_bytes(&self, _o: &u64) -> u64 {
            64
        }
    }

    /// CPU leaf: 1 µs of work per element, real sum as output.
    #[allow(clippy::type_complexity)]
    fn cpu_leaf() -> CpuLeafRuntime<impl FnMut(usize, &(u64, u64), SimTime) -> (SimTime, u64)> {
        CpuLeafRuntime(|_node, &(lo, hi): &(u64, u64), _now| {
            (SimTime::from_micros(hi - lo), (lo..hi).sum::<u64>())
        })
    }

    fn config(nodes: usize, seed: u64) -> SimConfig {
        SimConfig {
            nodes,
            seed,
            ..SimConfig::default()
        }
    }

    const N: u64 = 200_000;
    const EXPECT: u64 = N * (N - 1) / 2;

    #[test]
    fn single_node_computes_the_sum() {
        let mut cs = ClusterSim::new(SumApp { grain: 4_000 }, cpu_leaf(), config(1, 1));
        let out = cs.run_root((0, N));
        assert_eq!(out, EXPECT);
        let r = cs.report();
        assert_eq!(r.leaves, 64, "200k / 4k-grain halving = 64 leaves");
        assert_eq!(r.divides, 63);
        assert_eq!(r.steals_ok, 0, "nothing to steal with one node");
        // 200k µs of work over 8 cores ⇒ at least 25 ms.
        assert!(r.makespan >= SimTime::from_millis(25), "{}", r.makespan);
    }

    #[test]
    fn multi_node_same_result_with_steals() {
        let mut cs = ClusterSim::new(SumApp { grain: 4_000 }, cpu_leaf(), config(4, 7));
        let out = cs.run_root((0, N));
        assert_eq!(out, EXPECT);
        let r = cs.report();
        assert!(r.steals_ok > 0, "work must have been stolen");
        assert!(r.bytes_stolen > 0);
        assert!(r.bytes_results > 0);
    }

    #[test]
    fn more_nodes_scale_down_the_makespan() {
        let time = |nodes: usize| {
            let mut cs = ClusterSim::new(SumApp { grain: 2_000 }, cpu_leaf(), config(nodes, 5));
            let out = cs.run_root((0, N));
            assert_eq!(out, EXPECT);
            cs.report().makespan
        };
        let t1 = time(1);
        let t4 = time(4);
        let t8 = time(8);
        let s4 = t1.as_secs_f64() / t4.as_secs_f64();
        let s8 = t1.as_secs_f64() / t8.as_secs_f64();
        assert!(s4 > 2.5, "speedup on 4 nodes was {s4:.2}");
        assert!(s8 > s4, "8 nodes ({s8:.2}x) should beat 4 nodes ({s4:.2}x)");
    }

    #[test]
    fn deterministic_given_a_seed() {
        let run = || {
            let mut cs = ClusterSim::new(SumApp { grain: 1_000 }, cpu_leaf(), config(6, 99));
            let out = cs.run_root((0, N));
            (out, cs.report().makespan, cs.report().steals_ok)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seed_same_answer() {
        let run = |seed| {
            let mut cs = ClusterSim::new(SumApp { grain: 1_000 }, cpu_leaf(), config(6, seed));
            cs.run_root((0, N))
        };
        assert_eq!(run(1), run(2));
    }

    #[test]
    fn crash_recovery_still_produces_the_answer() {
        let mut cs = ClusterSim::new(SumApp { grain: 1_000 }, cpu_leaf(), config(4, 3));
        // Crash node 2 mid-run (total run is tens of ms).
        cs.schedule_crash(2, SimTime::from_millis(4)).unwrap();
        let out = cs.run_root((0, N));
        assert_eq!(out, EXPECT, "result correct despite losing a node");
        let r = cs.report();
        assert_eq!(r.crashes, 1);
        assert!(r.jobs_restarted > 0, "lost subtrees were re-executed");
    }

    #[test]
    fn schedule_crash_rejects_bad_requests() {
        let mut cs = ClusterSim::new(SumApp { grain: 4_000 }, cpu_leaf(), config(4, 3));
        // The master holds the root; crashing it is not modelled.
        let err = cs.schedule_crash(0, SimTime::from_millis(1)).unwrap_err();
        assert!(err.contains("master"), "{err}");
        // Out-of-range node.
        let err = cs.schedule_crash(4, SimTime::from_millis(1)).unwrap_err();
        assert!(err.contains("range"), "{err}");
        // A time already in the past (after a run has advanced the clock).
        let _ = cs.run_root((0, 10_000));
        assert!(cs.now() > SimTime::ZERO);
        let err = cs.schedule_crash(2, SimTime::ZERO).unwrap_err();
        assert!(err.contains("past"), "{err}");
        // A valid request still works.
        cs.schedule_crash(2, cs.now() + SimTime::from_millis(1))
            .unwrap();
    }

    #[test]
    fn crash_of_idle_node_is_harmless() {
        let mut cs = ClusterSim::new(SumApp { grain: 50_000 }, cpu_leaf(), config(4, 3));
        // Grain so large that only a few jobs exist; crash late-ish.
        cs.schedule_crash(3, SimTime::from_micros(10)).unwrap();
        let out = cs.run_root((0, N));
        assert_eq!(out, EXPECT);
    }

    #[test]
    fn broadcast_advances_time_and_counts_bytes() {
        let mut cs = ClusterSim::new(SumApp { grain: 4_000 }, cpu_leaf(), config(4, 1));
        let _ = cs.run_root((0, 8_000));
        let before = cs.now();
        cs.broadcast(1_000_000);
        assert!(cs.now() > before);
        assert_eq!(cs.report().bytes_broadcast, 3_000_000, "3 slaves × 1 MB");
    }

    #[test]
    fn iterative_runs_accumulate_time() {
        let mut cs = ClusterSim::new(SumApp { grain: 4_000 }, cpu_leaf(), config(2, 1));
        let a = cs.run_root((0, 50_000));
        let t1 = cs.now();
        cs.broadcast(1024);
        let b = cs.run_root((0, 50_000));
        assert_eq!(a, b);
        assert!(cs.now() > t1 * 2 - t1, "time strictly grows");
    }

    #[test]
    fn trace_records_cpu_and_steal_activity() {
        let mut cs = ClusterSim::new(
            SumApp { grain: 4_000 },
            cpu_leaf(),
            SimConfig {
                nodes: 3,
                trace: true,
                ..SimConfig::default()
            },
        );
        let _ = cs.run_root((0, N));
        let spans = cs.trace().spans();
        assert!(!spans.is_empty());
        use cashmere_des::trace::SpanKind;
        assert!(spans.iter().any(|s| s.kind == SpanKind::CpuTask));
        assert!(spans.iter().any(|s| s.kind == SpanKind::Steal));
    }

    /// An async leaf runtime with multiple independent device engines per
    /// node, assigned round-robin.
    struct FakeDeviceRuntime {
        engines: Vec<SimTime>,
        next: usize,
        kernel: SimTime,
    }

    impl LeafRuntime<SumApp> for FakeDeviceRuntime {
        fn plan(
            &mut self,
            _app: &SumApp,
            &(lo, hi): &(u64, u64),
            ctx: LeafCtx<'_>,
        ) -> LeafPlan<u64> {
            let e = self.next % self.engines.len();
            self.next += 1;
            let start = ctx.now.max(self.engines[e]);
            let done = start + self.kernel;
            self.engines[e] = done;
            LeafPlan::Async {
                submit: SimTime::from_micros(5),
                done,
                output: (lo..hi).sum::<u64>(),
            }
        }
    }

    #[test]
    fn async_leaves_release_the_core_and_overlap_on_devices() {
        // One node with a single CPU core but two device engines: with
        // asynchronous leaves the core is free after submission, so both
        // kernels overlap and the makespan is ~one kernel, not two.
        let mut cs = ClusterSim::new(
            SumApp { grain: 100_000 },
            FakeDeviceRuntime {
                engines: vec![SimTime::ZERO; 2],
                next: 0,
                kernel: SimTime::from_millis(10),
            },
            SimConfig {
                nodes: 1,
                cores_per_node: 1,
                ..SimConfig::default()
            },
        );
        let out = cs.run_root((0, N));
        assert_eq!(out, EXPECT);
        let m = cs.report().makespan;
        assert!(m >= SimTime::from_millis(10), "{m}");
        assert!(m < SimTime::from_millis(15), "kernels must overlap: {m}");
    }

    /// A *blocking* device runtime (one management thread per device job, as
    /// in the paper: "a call to MCL.launch() is blocking"): the core is held
    /// for the job's duration, which gives natural backpressure so other
    /// nodes can steal the still-queued node-level jobs.
    struct BlockingDeviceRuntime {
        free_at: Vec<SimTime>,
        kernel: SimTime,
    }

    impl LeafRuntime<SumApp> for BlockingDeviceRuntime {
        fn plan(
            &mut self,
            _app: &SumApp,
            &(lo, hi): &(u64, u64),
            ctx: LeafCtx<'_>,
        ) -> LeafPlan<u64> {
            let start = ctx.now.max(self.free_at[ctx.node]);
            let done = start + self.kernel;
            self.free_at[ctx.node] = done;
            LeafPlan::Cpu {
                compute: done - ctx.now,
                output: (lo..hi).sum::<u64>(),
            }
        }
    }

    #[test]
    fn blocking_device_leaves_distribute_across_nodes() {
        let nodes = 2;
        let mut cs = ClusterSim::new(
            SumApp { grain: 12_500 }, // 16 leaves
            BlockingDeviceRuntime {
                free_at: vec![SimTime::ZERO; nodes],
                kernel: SimTime::from_millis(10),
            },
            config(nodes, 1),
        );
        let out = cs.run_root((0, N));
        assert_eq!(out, EXPECT);
        let r = cs.report();
        assert!(r.steals_ok > 0, "node 1 must have stolen node-level jobs");
        // Two devices share 16 × 10 ms of kernels: well under the 160 ms a
        // single device would need.
        assert!(r.makespan < SimTime::from_millis(120), "{}", r.makespan);
        assert!(r.makespan >= SimTime::from_millis(70), "{}", r.makespan);
    }

    #[test]
    fn orphan_reuse_recovers_faster_than_reexecution() {
        // Two mid-run crashes on a 4-node cluster; the reuse arm must
        // salvage completed subtree results and strictly beat the
        // re-execute-everything ablation on both makespan and redone work.
        let arm = |reuse: bool| {
            let mut cs = ClusterSim::new(
                SumApp { grain: 1_000 },
                cpu_leaf(),
                SimConfig {
                    nodes: 4,
                    seed: 2,
                    orphan_reuse: reuse,
                    ..SimConfig::default()
                },
            );
            cs.schedule_crash(2, SimTime::from_millis(3)).unwrap();
            cs.schedule_crash(3, SimTime::from_millis(5)).unwrap();
            let out = cs.run_root((0, N));
            assert_eq!(out, EXPECT, "answer correct with reuse={reuse}");
            let r = cs.report().clone();
            if reuse {
                assert!(r.orphans_harvested > 0, "crash must orphan results");
                assert!(r.orphans_reused > 0, "orphans must be reused");
            } else {
                assert_eq!(r.orphans_harvested, 0, "ablation harvests nothing");
                assert_eq!(r.orphans_reused, 0);
            }
            r
        };
        let on = arm(true);
        let off = arm(false);
        assert!(
            on.makespan < off.makespan,
            "reuse must strictly improve the makespan: {} vs {}",
            on.makespan,
            off.makespan
        );
        assert!(
            on.recovery_time < off.recovery_time,
            "reuse must redo strictly less work: {} vs {}",
            on.recovery_time,
            off.recovery_time
        );
        assert!(on.time_to_recover > SimTime::ZERO, "episode was timed");
    }

    #[test]
    fn orphan_reuse_off_is_default_independent() {
        // A fault-free run is byte-identical whichever way the knob is set:
        // the table only fills (and the reuse probe only fires) once a
        // crash actually orphans something.
        let run = |reuse: bool| {
            let mut cs = ClusterSim::new(
                SumApp { grain: 1_000 },
                cpu_leaf(),
                SimConfig {
                    nodes: 4,
                    seed: 9,
                    orphan_reuse: reuse,
                    ..SimConfig::default()
                },
            );
            let out = cs.run_root((0, N));
            (out, cs.report().makespan, cs.report().steals_ok)
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn double_crash_of_a_node_is_a_counted_once_noop() {
        // Scheduling a second crash for an already-dead node must not
        // double-count `report.crashes` (documented no-op).
        let mut cs = ClusterSim::new(SumApp { grain: 1_000 }, cpu_leaf(), config(4, 3));
        cs.schedule_crash(2, SimTime::from_millis(3)).unwrap();
        cs.schedule_crash(2, SimTime::from_millis(4)).unwrap();
        let out = cs.run_root((0, N));
        assert_eq!(out, EXPECT);
        assert_eq!(cs.report().crashes, 1, "second crash is a no-op");
    }

    #[test]
    fn rejoined_node_reenters_the_cluster() {
        let mut cs = ClusterSim::new(SumApp { grain: 1_000 }, cpu_leaf(), config(4, 2));
        cs.schedule_crash(2, SimTime::from_millis(3)).unwrap();
        cs.schedule_join(2, SimTime::from_millis(6)).unwrap();
        let out = cs.run_root((0, N));
        assert_eq!(out, EXPECT);
        let r = cs.report();
        assert_eq!(r.crashes, 1);
        assert_eq!(r.joins, 1);
        // The rejoined node went back to work: it accumulated busy time
        // after the join (its pre-crash busy time was under 3 ms).
        assert!(
            r.node_busy[2] > SimTime::from_millis(3),
            "rejoined node busy for {}",
            r.node_busy[2]
        );
    }

    #[test]
    fn node_with_leading_join_starts_offline() {
        let mut cs = ClusterSim::new(
            SumApp { grain: 1_000 },
            cpu_leaf(),
            SimConfig {
                nodes: 3,
                seed: 4,
                faults: cashmere_des::FaultPlan {
                    node_joins: vec![cashmere_des::NodeJoin {
                        node: 2,
                        at: SimTime::from_millis(5),
                    }],
                    ..cashmere_des::FaultPlan::default()
                },
                ..SimConfig::default()
            },
        );
        let out = cs.run_root((0, N));
        assert_eq!(out, EXPECT);
        let r = cs.report();
        assert_eq!(r.joins, 1, "fresh join counted");
        assert_eq!(r.crashes, 0);
        assert!(
            r.node_busy[2] > SimTime::ZERO,
            "late joiner still contributed work"
        );
    }

    #[test]
    fn probe_sampling_does_not_perturb_the_run() {
        let run = |probe: Option<SimTime>| {
            let mut cs = ClusterSim::new(
                SumApp { grain: 1_000 },
                cpu_leaf(),
                SimConfig {
                    nodes: 4,
                    seed: 2,
                    probe_interval: probe,
                    ..SimConfig::default()
                },
            );
            cs.schedule_crash(2, SimTime::from_millis(3)).unwrap();
            let out = cs.run_root((0, N));
            (out, cs.now(), cs.report().clone())
        };
        let (out_off, now_off, rep_off) = run(None);
        let (out_on, now_on, rep_on) = run(Some(SimTime::from_micros(100)));
        assert_eq!(out_on, out_off);
        assert_eq!(now_on, now_off, "probes must not advance the clock");
        assert_eq!(
            serde_json::to_string(&rep_on).unwrap(),
            serde_json::to_string(&rep_off).unwrap(),
            "reports must be byte-identical with and without sampling"
        );
    }

    #[test]
    fn probe_series_lands_on_the_cadence_grid_and_sees_the_crash() {
        let iv = SimTime::from_micros(500);
        let mut cs = ClusterSim::new(
            SumApp { grain: 1_000 },
            cpu_leaf(),
            SimConfig {
                nodes: 4,
                seed: 2,
                probe_interval: Some(iv),
                ..SimConfig::default()
            },
        );
        cs.schedule_crash(2, SimTime::from_millis(3)).unwrap();
        let _ = cs.run_root((0, N));
        let first_run_end = cs.now();
        let p = cs.probe_series().expect("probing was enabled").clone();
        assert!(!p.is_empty(), "a tens-of-ms run records many ticks");
        for (i, t) in p.times.iter().enumerate() {
            assert_eq!(t.as_nanos() % iv.as_nanos(), 0, "tick {i} off-grid: {t}");
            assert!(*t < first_run_end, "tick {i} past the finish: {t}");
            if i > 0 {
                assert!(p.times[i - 1] < *t, "timestamps strictly increase");
            }
        }
        let alive = p.column("alive").expect("alive column");
        assert_eq!(alive.values[0], 4.0, "all nodes alive at the start");
        assert_eq!(
            *alive.values.last().unwrap(),
            3.0,
            "the crash shows up in the series"
        );
        for c in &p.columns {
            assert_eq!(c.values.len(), p.len(), "column {} misaligned", c.name);
        }

        // Iterative drivers keep sampling across broadcast + next root on
        // the same grid, with no duplicate timestamps at the seam.
        cs.broadcast(1024);
        let _ = cs.run_root((0, N));
        let p2 = cs.probe_series().unwrap();
        assert!(p2.len() > p.len(), "second iteration keeps recording");
        for i in 1..p2.times.len() {
            assert!(p2.times[i - 1] < p2.times[i], "duplicate tick at {i}");
        }
    }

    #[test]
    fn no_victim_polls_back_off_instead_of_busy_polling() {
        // One async-device master alone in the cluster (its only peer dies
        // immediately): every idle moment triggers a steal attempt that
        // finds no live victim. With exponential backoff the poll count
        // stays logarithmic in the wait, far under the fixed-cadence count
        // (kernel time / steal_retry = 10 ms / 200 µs = 50 polls per leaf).
        let mut cs = ClusterSim::new(
            SumApp { grain: 100_000 },
            FakeDeviceRuntime {
                engines: vec![SimTime::ZERO; 2],
                next: 0,
                kernel: SimTime::from_millis(10),
            },
            SimConfig {
                nodes: 2,
                cores_per_node: 1,
                seed: 1,
                ..SimConfig::default()
            },
        );
        cs.schedule_crash(1, SimTime::from_micros(1)).unwrap();
        let out = cs.run_root((0, N));
        assert_eq!(out, EXPECT);
        let r = cs.report();
        assert!(r.no_victim_polls > 0, "the no-victim path must be hit");
        assert!(
            r.no_victim_polls < 40,
            "{} polls — no-victim loop is busy-polling instead of backing off",
            r.no_victim_polls
        );
    }

    /// Policy-arena determinism: for every [`StealKind`], the exact victim
    /// sequence is byte-identical across two runs from the same seed — even
    /// across a crash/rejoin boundary, where the victim set shrinks and
    /// regrows and stateful policies must invalidate deterministically.
    #[test]
    fn steal_victim_sequences_are_deterministic_per_policy() {
        let run = |kind: StealKind| {
            let mut cs = ClusterSim::new(
                SumApp { grain: 1_000 },
                cpu_leaf(),
                SimConfig {
                    nodes: 6,
                    seed: 99,
                    trace: true,
                    steal: kind,
                    ..SimConfig::default()
                },
            );
            cs.schedule_crash(2, SimTime::from_millis(3)).unwrap();
            cs.schedule_join(2, SimTime::from_millis(9)).unwrap();
            let out = cs.run_root((0, N));
            assert_eq!(out, EXPECT);
            let victims = cs.steal_victims().to_vec();
            assert!(!victims.is_empty(), "{}: no steals initiated", kind.name());
            for &(thief, victim) in &victims {
                assert_ne!(thief, victim, "{}: self-steal", kind.name());
            }
            (victims, cs.report().steals_ok, cs.report().crashes)
        };
        let mut sequences = Vec::new();
        for kind in StealKind::ALL {
            let a = run(kind);
            let b = run(kind);
            assert_eq!(
                a,
                b,
                "{}: victim sequence diverged across runs",
                kind.name()
            );
            assert_eq!(a.2, 1, "{}: crash did not land", kind.name());
            sequences.push(a.0);
        }
        // Sanity: the policies are actually different selectors, not three
        // names for the same behaviour.
        assert_ne!(sequences[0], sequences[2]);
    }

    /// The default steal policy must reproduce the historically inlined
    /// random victim pick: a default-config run is byte-identical in its
    /// observable report whether or not the caller names the policy.
    #[test]
    fn default_steal_policy_is_uniform_random() {
        let run = |cfg: SimConfig| {
            let mut cs = ClusterSim::new(SumApp { grain: 1_000 }, cpu_leaf(), cfg);
            let out = cs.run_root((0, N));
            assert_eq!(out, EXPECT);
            (cs.report().makespan, cs.report().steals_ok)
        };
        let implicit = run(config(6, 99));
        let explicit = run(SimConfig {
            steal: StealKind::UniformRandom,
            ..config(6, 99)
        });
        assert_eq!(implicit, explicit);
    }
}
