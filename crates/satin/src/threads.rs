//! Real shared-memory backend for the Satin programming model.
//!
//! Satin's `spawn`/`sync` is Cilk's fork–join (paper Sec. II-A); on a single
//! node that is exactly structured fork–join parallelism, implemented here
//! as a work-stealing thread pool with a `join(a, b)` primitive in the style
//! of Cilk/rayon:
//!
//! * every worker owns a LIFO deque (`crossbeam_deque::Worker`);
//! * `join` pushes `b`, runs `a` inline (work-first), then pops `b` back or
//!   — if it was stolen — *helps* by running other jobs until `b` is done;
//! * idle workers steal FIFO from victims chosen in scan order.
//!
//! The pointer-based `StackJob` avoids allocating for the common
//! not-stolen case is traded away for safety here: jobs are boxed, but the
//! *lifetime* problem of borrowed closures is handled the same way rayon
//! does it — `join` does not return until both closures finished, so the
//! erased pointers never dangle. See the `SAFETY` comments.

use crossbeam_deque::{Injector, Stealer, Worker};
use parking_lot::{Condvar, Mutex};
use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// A type-erased reference to a job living on some stack frame below a
/// `join` call (or in the injector for root jobs).
#[derive(Clone, Copy)]
struct JobRef {
    data: *const (),
    execute: unsafe fn(*const ()),
}

// SAFETY: a JobRef is only sent between worker threads of the same pool and
// only executed once; the owning stack frame outlives execution because
// `join`/`run` block until the job's latch is set.
unsafe impl Send for JobRef {}

/// A job whose closure and result live on the spawner's stack.
struct StackJob<F, R> {
    f: Cell<Option<F>>,
    result: Cell<Option<std::thread::Result<R>>>,
    done: AtomicBool,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    fn new(f: F) -> Self {
        StackJob {
            f: Cell::new(Some(f)),
            result: Cell::new(None),
            done: AtomicBool::new(false),
        }
    }

    unsafe fn as_job_ref(&self) -> JobRef {
        JobRef {
            data: self as *const Self as *const (),
            execute: Self::execute,
        }
    }

    unsafe fn execute(this: *const ()) {
        let this = &*(this as *const Self);
        let f = this.f.take().expect("job executed twice");
        let res = panic::catch_unwind(AssertUnwindSafe(f));
        this.result.set(Some(res));
        // Release: the result write happens-before the `done` load in `join`.
        this.done.store(true, Ordering::Release);
    }

    fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    fn take_result(&self) -> R {
        match self.result.take().expect("result missing") {
            Ok(r) => r,
            Err(payload) => panic::resume_unwind(payload),
        }
    }
}

// SAFETY: StackJob is shared across threads only through JobRef; the Cells
// are accessed by exactly one thread at a time (executor before the Release
// store, owner after the Acquire load).
unsafe impl<F: Send, R: Send> Sync for StackJob<F, R> {}

struct Registry {
    injector: Injector<JobRef>,
    stealers: Vec<Stealer<JobRef>>,
    sleep_mutex: Mutex<()>,
    sleep_cond: Condvar,
    terminating: AtomicBool,
    active_jobs: AtomicUsize,
}

impl Registry {
    fn wake_all(&self) {
        let _g = self.sleep_mutex.lock();
        self.sleep_cond.notify_all();
    }
}

thread_local! {
    static CURRENT_WORKER: Cell<*const WorkerCtx> = const { Cell::new(std::ptr::null()) };
}

struct WorkerCtx {
    registry: Arc<Registry>,
    worker: Worker<JobRef>,
    index: usize,
}

impl WorkerCtx {
    /// Find a job: own deque (LIFO), then injector, then steal (FIFO).
    fn find_job(&self) -> Option<JobRef> {
        if let Some(j) = self.worker.pop() {
            return Some(j);
        }
        loop {
            match self.registry.injector.steal_batch_and_pop(&self.worker) {
                crossbeam_deque::Steal::Success(j) => return Some(j),
                crossbeam_deque::Steal::Retry => continue,
                crossbeam_deque::Steal::Empty => break,
            }
        }
        let n = self.registry.stealers.len();
        for k in 0..n {
            let v = (self.index + 1 + k) % n;
            if v == self.index {
                continue;
            }
            loop {
                match self.registry.stealers[v].steal() {
                    crossbeam_deque::Steal::Success(j) => return Some(j),
                    crossbeam_deque::Steal::Retry => continue,
                    crossbeam_deque::Steal::Empty => break,
                }
            }
        }
        None
    }

    fn worker_loop(&self) {
        loop {
            if let Some(job) = self.find_job() {
                // SAFETY: job pointers remain valid until their latch is set
                // (the owner blocks in join/run), and each is executed once.
                unsafe { (job.execute)(job.data) };
                self.registry.active_jobs.fetch_sub(1, Ordering::Relaxed);
                self.registry.wake_all();
                continue;
            }
            if self.registry.terminating.load(Ordering::Acquire) {
                return;
            }
            let mut g = self.registry.sleep_mutex.lock();
            if self.registry.terminating.load(Ordering::Acquire) {
                return;
            }
            if self.registry.active_jobs.load(Ordering::Relaxed) == 0 {
                // Nothing anywhere: sleep until new work is injected.
                self.registry.sleep_cond.wait(&mut g);
            } else {
                // Work exists but none is stealable right now (all jobs are
                // executing); back off briefly instead of spinning hot.
                self.registry
                    .sleep_cond
                    .wait_for(&mut g, std::time::Duration::from_micros(100));
            }
        }
    }
}

/// A Satin-style work-stealing pool.
pub struct SatinPool {
    registry: Arc<Registry>,
    handles: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl SatinPool {
    /// Spin up `threads` workers (≥1).
    pub fn new(threads: usize) -> SatinPool {
        let threads = threads.max(1);
        let workers: Vec<Worker<JobRef>> = (0..threads).map(|_| Worker::new_lifo()).collect();
        let stealers = workers.iter().map(Worker::stealer).collect();
        let registry = Arc::new(Registry {
            injector: Injector::new(),
            stealers,
            sleep_mutex: Mutex::new(()),
            sleep_cond: Condvar::new(),
            terminating: AtomicBool::new(false),
            active_jobs: AtomicUsize::new(0),
        });
        let handles = workers
            .into_iter()
            .enumerate()
            .map(|(index, worker)| {
                let registry = Arc::clone(&registry);
                std::thread::Builder::new()
                    .name(format!("satin-worker-{index}"))
                    .spawn(move || {
                        let ctx = WorkerCtx {
                            registry,
                            worker,
                            index,
                        };
                        CURRENT_WORKER.with(|c| c.set(&ctx as *const WorkerCtx));
                        ctx.worker_loop();
                        CURRENT_WORKER.with(|c| c.set(std::ptr::null()));
                    })
                    .expect("spawn satin worker")
            })
            .collect();
        SatinPool {
            registry,
            handles,
            threads,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f` on the pool and block until it completes. `f` may call
    /// [`join`] (transitively) to expose parallelism.
    pub fn run<F, R>(&self, f: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        let job = StackJob::new(f);
        // SAFETY: we block below until the job's latch is set, so the
        // stack-allocated job outlives its execution.
        let job_ref = unsafe { job.as_job_ref() };
        self.registry.active_jobs.fetch_add(1, Ordering::Relaxed);
        self.registry.injector.push(job_ref);
        self.registry.wake_all();
        // Park instead of spinning: workers broadcast on every job
        // completion, and the timed wait bounds any missed wakeup.
        while !job.is_done() {
            let mut g = self.registry.sleep_mutex.lock();
            if !job.is_done() {
                self.registry
                    .sleep_cond
                    .wait_for(&mut g, std::time::Duration::from_millis(1));
            }
        }
        job.take_result()
    }
}

impl Drop for SatinPool {
    fn drop(&mut self) {
        self.registry.terminating.store(true, Ordering::Release);
        self.registry.wake_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Fork–join: runs `a` and `b`, potentially in parallel, and returns both
/// results. Must be called from inside a pool (i.e. transitively from
/// [`SatinPool::run`]); called outside, it simply runs sequentially.
///
/// This is the `spawn … spawn … sync` pattern of the paper's Fig. 1 in its
/// binary form.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let ctx_ptr = CURRENT_WORKER.with(|c| c.get());
    if ctx_ptr.is_null() {
        // Not on a worker: sequential fallback.
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    // SAFETY: the pointer is set by the worker thread itself at startup and
    // cleared at shutdown; we are running on that thread.
    let ctx = unsafe { &*ctx_ptr };

    let b_job = StackJob::new(b);
    // SAFETY: we do not return until b_job's latch is set (below), so the
    // reference pushed to the deque cannot dangle.
    let b_ref = unsafe { b_job.as_job_ref() };
    ctx.registry.active_jobs.fetch_add(1, Ordering::Relaxed);
    ctx.worker.push(b_ref);
    ctx.registry.wake_all();

    let ra = a();

    // Fast path: if b is still in our own deque, run it inline.
    while !b_job.is_done() {
        match ctx.worker.pop() {
            Some(job) => {
                // Usually this is b itself; if `a` left other jobs they are
                // ours to run too.
                unsafe { (job.execute)(job.data) };
                ctx.registry.active_jobs.fetch_sub(1, Ordering::Relaxed);
                ctx.registry.wake_all();
            }
            None => {
                // b was stolen: help by running any other available job.
                if let Some(job) = ctx.find_job() {
                    unsafe { (job.execute)(job.data) };
                    ctx.registry.active_jobs.fetch_sub(1, Ordering::Relaxed);
                    ctx.registry.wake_all();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
    let rb = b_job.take_result();
    (ra, rb)
}

/// Recursive divide-and-conquer helper over an index range: splits
/// `[lo, hi)` down to `grain`, runs `leaf` on each chunk in parallel, and
/// combines results with `merge`. A convenience wrapper over [`join`]
/// matching the skeleton of the paper's Fig. 1.
pub fn parallel_reduce<R, Leaf, Merge>(
    lo: u64,
    hi: u64,
    grain: u64,
    leaf: &Leaf,
    merge: &Merge,
) -> R
where
    R: Send,
    Leaf: Fn(u64, u64) -> R + Sync,
    Merge: Fn(R, R) -> R + Sync,
{
    if hi - lo <= grain.max(1) {
        return leaf(lo, hi);
    }
    let mid = lo + (hi - lo) / 2;
    let (a, b) = join(
        || parallel_reduce(lo, mid, grain, leaf, merge),
        || parallel_reduce(mid, hi, grain, leaf, merge),
    );
    merge(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn fib(n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let (a, b) = join(|| fib(n - 1), || fib(n - 2));
        a + b
    }

    #[test]
    fn fib_parallel_matches_sequential() {
        let pool = SatinPool::new(4);
        let r = pool.run(|| fib(20));
        assert_eq!(r, 6765);
    }

    #[test]
    fn join_outside_pool_is_sequential() {
        let (a, b) = join(|| 1 + 1, || 2 + 2);
        assert_eq!((a, b), (2, 4));
    }

    #[test]
    fn parallel_reduce_sums_range() {
        let pool = SatinPool::new(8);
        let total = pool.run(|| {
            parallel_reduce(0, 10_000, 64, &|lo, hi| (lo..hi).sum::<u64>(), &|a, b| {
                a + b
            })
        });
        assert_eq!(total, 10_000 * 9_999 / 2);
    }

    #[test]
    fn borrowed_data_is_usable_across_join() {
        let data: Vec<u64> = (0..4096).collect();
        let pool = SatinPool::new(4);
        let sum = pool.run(|| {
            parallel_reduce(
                0,
                data.len() as u64,
                128,
                &|lo, hi| data[lo as usize..hi as usize].iter().sum::<u64>(),
                &|a, b| a + b,
            )
        });
        assert_eq!(sum, data.iter().sum::<u64>());
    }

    #[test]
    fn work_actually_spreads_across_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex as StdMutex;
        let seen: StdMutex<HashSet<std::thread::ThreadId>> = StdMutex::new(HashSet::new());
        let pool = SatinPool::new(4);
        pool.run(|| {
            parallel_reduce(
                0,
                4096,
                1,
                &|_lo, _hi| {
                    // Do a little work so stealing has time to happen.
                    std::hint::black_box((0..500).sum::<u64>());
                    seen.lock().unwrap().insert(std::thread::current().id());
                    0u64
                },
                &|a, b| a + b,
            )
        });
        let n = seen.lock().unwrap().len();
        assert!(n >= 2, "expected ≥2 worker threads, saw {n}");
    }

    #[test]
    fn panics_propagate_to_caller() {
        let pool = SatinPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|| {
                let ((), ()) = join(|| (), || panic!("boom in spawned job"));
            })
        }));
        assert!(result.is_err());
        // Pool is still usable afterwards.
        assert_eq!(pool.run(|| fib(10)), 55);
    }

    #[test]
    fn nested_runs_and_many_joins() {
        let pool = SatinPool::new(3);
        let counter = AtomicU64::new(0);
        pool.run(|| {
            parallel_reduce(
                0,
                1000,
                1,
                &|_l, _h| {
                    counter.fetch_add(1, Ordering::Relaxed);
                    0u64
                },
                &|a, b| a + b,
            )
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn single_thread_pool_still_correct() {
        let pool = SatinPool::new(1);
        assert_eq!(pool.run(|| fib(15)), 610);
    }

    #[test]
    fn speedup_is_observable_on_compute_bound_work() {
        // Not a benchmark — just a sanity check that 4 threads beat 1 on an
        // embarrassingly parallel workload by a comfortable margin.
        fn work(lo: u64, hi: u64) -> u64 {
            let mut acc = 0u64;
            for i in lo..hi {
                acc = acc.wrapping_add(std::hint::black_box(i).wrapping_mul(2654435761));
                acc ^= acc >> 13;
            }
            acc
        }
        let run = |threads: usize| {
            let pool = SatinPool::new(threads);
            let t0 = std::time::Instant::now();
            let r = pool
                .run(|| parallel_reduce(0, 40_000_000, 1 << 18, &work, &|a, b| a.wrapping_add(b)));
            (r, t0.elapsed())
        };
        let (r1, t1) = run(1);
        let (r4, t4) = run(4);
        assert_eq!(r1, r4);
        // Only meaningful on a multi-core host; single-core CI boxes can't
        // show a speedup no matter what the scheduler does.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cores >= 2 {
            assert!(
                t4 < t1,
                "4 threads ({t4:?}) should beat 1 thread ({t1:?}) on {cores} cores"
            );
        }
    }
}
