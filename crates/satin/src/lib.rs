//! # cashmere-satin — the Satin divide-and-conquer runtime
//!
//! Satin (paper Sec. II-A) is a Cilk-inspired programming system for
//! clusters: programmers express computations as recursive `spawnable`
//! functions with a `sync` barrier (Fig. 1), and the runtime load-balances
//! the resulting job tree with random work stealing, hides network latency,
//! and recovers from node failures.
//!
//! Two backends:
//!
//! * [`threads`] — a real shared-memory work-stealing pool implementing
//!   `join` (spawn/sync in its structured binary form) on this machine's
//!   cores; used by examples and as the intra-node execution vehicle.
//! * [`sim`] — the simulated cluster used for every paper experiment:
//!   nodes, cores, random work stealing over the modelled interconnect,
//!   CPU-contention-coupled message handling, fault tolerance, and
//!   pluggable leaf execution (plain CPU leaves here; Cashmere's many-core
//!   leaves in the `cashmere` crate).

pub mod sim;
pub mod threads;

pub use sim::{
    critical_path_summary, text_table, ClusterApp, ClusterSim, CpuLeafRuntime, DcStep, LeafCtx,
    LeafPlan, LeafRuntime, RunReport, SimConfig, StealKind, StealPolicy,
};
pub use threads::{join, parallel_reduce, SatinPool};
