//! Deterministic random-number streams.
//!
//! Every randomized component (work-steal victim selection, workload
//! generators, …) gets its own named stream derived from the master seed, so
//! adding a component never perturbs the random sequence another component
//! sees. ChaCha8 is used because its stream is stable across `rand` versions
//! and platforms — plain `StdRng` makes no such promise.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// SplitMix64 step — used to whiten (seed, stream) pairs into ChaCha keys.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic RNG stream identified by `(master_seed, stream_id)`.
///
/// Wraps `ChaCha8Rng` and dereferences to it via [`StreamRng::rng`].
#[derive(Debug, Clone)]
pub struct StreamRng {
    inner: ChaCha8Rng,
}

impl StreamRng {
    /// Derive a stream from the master seed and a numeric stream id.
    pub fn new(master_seed: u64, stream_id: u64) -> Self {
        let mut key = [0u8; 32];
        let mut state = splitmix64(master_seed ^ splitmix64(stream_id));
        for chunk in key.chunks_exact_mut(8) {
            state = splitmix64(state);
            chunk.copy_from_slice(&state.to_le_bytes());
        }
        StreamRng {
            inner: ChaCha8Rng::from_seed(key),
        }
    }

    /// Derive a stream from the master seed and a textual stream name.
    pub fn named(master_seed: u64, name: &str) -> Self {
        // FNV-1a over the name; cheap and stable.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        StreamRng::new(master_seed, h)
    }

    /// Access the underlying RNG.
    #[inline]
    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        &mut self.inner
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn same_ids_same_stream() {
        let mut a = StreamRng::new(42, 7);
        let mut b = StreamRng::new(42, 7);
        for _ in 0..32 {
            assert_eq!(a.rng().next_u64(), b.rng().next_u64());
        }
    }

    #[test]
    fn different_ids_different_streams() {
        let mut a = StreamRng::new(42, 7);
        let mut b = StreamRng::new(42, 8);
        let va: Vec<u64> = (0..8).map(|_| a.rng().next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.rng().next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn named_streams_are_stable() {
        let mut a = StreamRng::named(1, "steal-victims");
        let mut b = StreamRng::named(1, "steal-victims");
        assert_eq!(a.rng().next_u64(), b.rng().next_u64());
        let mut c = StreamRng::named(1, "workload");
        assert_ne!(
            StreamRng::named(1, "steal-victims").rng().next_u64(),
            c.rng().next_u64()
        );
    }

    #[test]
    fn below_is_in_range() {
        let mut r = StreamRng::new(3, 3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
