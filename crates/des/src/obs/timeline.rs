//! Per-resource utilization timelines derived from the span trace.
//!
//! Every lane (device engine, node CPU, NIC) gets a step function of its
//! concurrent-span occupancy over virtual time, plus the time-weighted busy
//! fraction of the run horizon. The step functions export as Chrome counter
//! tracks (`ph:"C"`, see [`crate::obs::chrome`]) so idle gaps line up under
//! the span bars in Perfetto, and the busy fractions render as a text
//! digest the advisor prints next to its what-if ranking — a what-if win on
//! a resource should correspond to high occupancy here, and a loss to idle
//! time.
//!
//! Lanes with zero recorded spans are omitted entirely: they contribute no
//! evidence, and emitting empty counter tracks for them would clutter the
//! Chrome export with dead rows.

use crate::time::SimTime;
use crate::trace::Trace;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Occupancy of one trace lane over the run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LaneUsage {
    /// Lane index in the owning [`Trace`] (the Chrome `tid`).
    pub lane: usize,
    pub name: String,
    /// Number of spans recorded on the lane.
    pub spans: usize,
    /// Union of the lane's span intervals (overlap counted once).
    pub busy: SimTime,
    /// `busy` as a percentage of the trace horizon.
    pub busy_pct: f64,
    /// Occupancy step function: `(time, concurrent spans)` at every point
    /// where the count changes, starting at the first span start and ending
    /// with a zero at the last span end. Consecutive equal counts are
    /// coalesced.
    pub points: Vec<(SimTime, u64)>,
}

/// Utilization timelines of every lane that recorded at least one span.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UtilizationTimelines {
    /// End of the last recorded span.
    pub horizon: SimTime,
    /// Per-lane occupancy, in lane-registration order.
    pub lanes: Vec<LaneUsage>,
}

impl UtilizationTimelines {
    /// Compute occupancy step functions for every lane of `trace` that has
    /// at least one span. Deterministic: a single sorted sweep over span
    /// endpoints per lane.
    pub fn compute(trace: &Trace) -> UtilizationTimelines {
        let horizon = trace.horizon();
        let mut per_lane: Vec<Vec<(u64, i64)>> = vec![Vec::new(); trace.lane_count()];
        for s in trace.spans() {
            per_lane[s.lane.0].push((s.start.as_nanos(), 1));
            per_lane[s.lane.0].push((s.end.as_nanos(), -1));
        }
        let mut lanes = Vec::new();
        for (lane, mut deltas) in per_lane.into_iter().enumerate() {
            if deltas.is_empty() {
                continue;
            }
            let spans = deltas.len() / 2;
            // Ends sort before starts at the same instant, so back-to-back
            // spans read as continuously busy rather than a zero-width dip.
            deltas.sort_unstable();
            let mut points: Vec<(SimTime, u64)> = Vec::new();
            let mut busy_ns = 0u64;
            let mut count = 0i64;
            let mut prev_ts = deltas[0].0;
            let mut i = 0;
            while i < deltas.len() {
                let ts = deltas[i].0;
                if count > 0 {
                    busy_ns += ts - prev_ts;
                }
                prev_ts = ts;
                while i < deltas.len() && deltas[i].0 == ts {
                    count += deltas[i].1;
                    i += 1;
                }
                let c = count.max(0) as u64;
                if points.last().map(|&(_, v)| v) != Some(c) {
                    points.push((SimTime::from_nanos(ts), c));
                }
            }
            let busy = SimTime::from_nanos(busy_ns);
            let busy_pct = if horizon.as_nanos() == 0 {
                0.0
            } else {
                100.0 * busy_ns as f64 / horizon.as_nanos() as f64
            };
            lanes.push(LaneUsage {
                lane,
                name: trace.lane_name(crate::trace::LaneId(lane)).to_string(),
                spans,
                busy,
                busy_pct,
                points,
            });
        }
        UtilizationTimelines { horizon, lanes }
    }

    /// Look up a lane's usage by name.
    pub fn lane(&self, name: &str) -> Option<&LaneUsage> {
        self.lanes.iter().find(|l| l.name == name)
    }

    /// Text digest: one line per lane with its busy share of the horizon,
    /// sorted by descending busy time (ties by lane order) so the hottest
    /// resources lead.
    pub fn text_digest(&self) -> String {
        let mut order: Vec<usize> = (0..self.lanes.len()).collect();
        order.sort_by(|&a, &b| self.lanes[b].busy.cmp(&self.lanes[a].busy).then(a.cmp(&b)));
        let width = self
            .lanes
            .iter()
            .map(|l| l.name.len())
            .max()
            .unwrap_or(0)
            .max(8);
        let mut out = format!("resource utilization over {} horizon:\n", self.horizon);
        for idx in order {
            let l = &self.lanes[idx];
            let _ = writeln!(
                out,
                "  {:<width$}  {:>6.1}%  busy {}  spans {}",
                l.name, l.busy_pct, l.busy, l.spans
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SpanKind;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn occupancy_counts_overlap_and_skips_empty_lanes() {
        let mut tr = Trace::new();
        tr.set_enabled(true);
        let a = tr.add_lane("busy");
        let _empty = tr.add_lane("empty");
        // Two overlapping spans, then a gap, then one more.
        tr.record(a, SpanKind::Kernel, "k1", t(0), t(10));
        tr.record(a, SpanKind::Kernel, "k2", t(5), t(15));
        tr.record(a, SpanKind::Kernel, "k3", t(20), t(30));
        let util = UtilizationTimelines::compute(&tr);
        assert_eq!(util.lanes.len(), 1, "empty lanes are omitted");
        let l = util.lane("busy").unwrap();
        assert_eq!(l.spans, 3);
        // Busy union: [0,15) ∪ [20,30) = 25 µs of a 30 µs horizon.
        assert_eq!(l.busy, t(25));
        assert!((l.busy_pct - 25.0 / 30.0 * 100.0).abs() < 1e-9);
        assert_eq!(
            l.points,
            vec![
                (t(0), 1),
                (t(5), 2),
                (t(10), 1),
                (t(15), 0),
                (t(20), 1),
                (t(30), 0)
            ]
        );
    }

    #[test]
    fn back_to_back_spans_read_as_continuous() {
        let mut tr = Trace::new();
        tr.set_enabled(true);
        let a = tr.add_lane("x");
        tr.record(a, SpanKind::CpuTask, "a", t(0), t(5));
        tr.record(a, SpanKind::CpuTask, "b", t(5), t(9));
        let util = UtilizationTimelines::compute(&tr);
        let l = util.lane("x").unwrap();
        assert_eq!(l.busy, t(9));
        assert_eq!(l.points, vec![(t(0), 1), (t(9), 0)]);
    }

    #[test]
    fn digest_ranks_hottest_lane_first() {
        let mut tr = Trace::new();
        tr.set_enabled(true);
        let a = tr.add_lane("cool");
        let b = tr.add_lane("hot");
        tr.record(a, SpanKind::CpuTask, "a", t(0), t(1));
        tr.record(b, SpanKind::Kernel, "b", t(0), t(50));
        let d = UtilizationTimelines::compute(&tr).text_digest();
        let hot = d.find("hot").unwrap();
        let cool = d.find("cool").unwrap();
        assert!(hot < cool, "{d}");
    }

    #[test]
    fn empty_trace_has_no_lanes() {
        let tr = Trace::new();
        let util = UtilizationTimelines::compute(&tr);
        assert!(util.lanes.is_empty());
        assert_eq!(util.text_digest().lines().count(), 1);
    }
}
