//! Metrics registry: named counters, time-weighted gauges and log-scaled
//! latency histograms.
//!
//! Everything here is deterministic: storage is `BTreeMap`-keyed, histogram
//! buckets are powers of two of simulated nanoseconds, and no wall-clock or
//! RNG state is consulted, so two identical seeded runs render byte-identical
//! summaries. Recording is gated by an `enabled` flag (set alongside trace
//! recording) so the hot path costs one branch when observability is off.

use crate::stats::TimeWeighted;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of log2 buckets: bucket `i` holds durations with bit length `i`,
/// i.e. `[2^(i-1), 2^i)` ns (bucket 0 holds exact zeros).
const BUCKETS: usize = 65;

/// A latency histogram with logarithmic (power-of-two) buckets.
///
/// Quantiles interpolate linearly *within* the resolved log₂ bucket (the
/// `histogram_quantile` rule), positioned by the rank's offset into the
/// bucket, then clamp into the observed `[min, max]` range — exact for
/// single-valued distributions and far closer than the bucket upper bound
/// (which over-reported by up to 2× when the mass sat at a bucket's lower
/// edge) otherwise.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }
}

fn bucket_index(ns: u64) -> usize {
    (u64::BITS - ns.leading_zeros()) as usize
}

fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

fn bucket_lower_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1).min(63)
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, value: SimTime) {
        let ns = value.as_nanos();
        self.buckets[bucket_index(ns)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn min(&self) -> SimTime {
        SimTime::from_nanos(if self.count == 0 { 0 } else { self.min_ns })
    }

    pub fn max(&self) -> SimTime {
        SimTime::from_nanos(self.max_ns)
    }

    pub fn mean(&self) -> SimTime {
        SimTime::from_nanos(self.sum_ns.checked_div(self.count).unwrap_or(0))
    }

    /// Sum of every recorded value.
    pub fn sum(&self) -> SimTime {
        SimTime::from_nanos(self.sum_ns)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) of the recorded values, interpolated
    /// linearly within the resolved log₂ bucket by the rank's offset into
    /// that bucket's population.
    pub fn quantile(&self, q: f64) -> SimTime {
        if self.count == 0 {
            return SimTime::ZERO;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                let lower = bucket_lower_bound(i);
                let upper = bucket_upper_bound(i);
                // Rank position inside this bucket, in (0, 1].
                let before = cumulative - n;
                let pos = (target - before) as f64 / *n as f64;
                let est = lower as f64 + (upper - lower) as f64 * pos;
                return SimTime::from_nanos((est as u64).clamp(self.min_ns, self.max_ns));
            }
        }
        SimTime::from_nanos(self.max_ns)
    }

    pub fn p50(&self) -> SimTime {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> SimTime {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> SimTime {
        self.quantile(0.99)
    }
}

/// Central registry of named metrics, owned by the simulation
/// ([`crate::Sim::metrics`]). Names are dotted paths such as
/// `node1.busy_cores` or `pcie.h2d`.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    enabled: bool,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, TimeWeighted>,
    histograms: BTreeMap<String, LatencyHistogram>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Turn recording on or off (mirrors [`crate::Trace::set_enabled`]).
    #[inline]
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Increment a counter by one.
    #[inline]
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Increment a counter by `delta`.
    #[inline]
    pub fn add(&mut self, name: &str, delta: u64) {
        if !self.enabled {
            return;
        }
        match self.counters.get_mut(name) {
            Some(c) => *c += delta,
            None => {
                self.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Set a time-weighted gauge to `value` at simulated time `now`.
    /// Out-of-order timestamps (overlapping leaves submit into the future)
    /// are clamped to the gauge's last update time.
    #[inline]
    pub fn gauge_set(&mut self, name: &str, now: SimTime, value: f64) {
        if !self.enabled {
            return;
        }
        match self.gauges.get_mut(name) {
            Some(g) => g.update_clamped(now, value),
            None => {
                self.gauges
                    .insert(name.to_string(), TimeWeighted::new(now, value));
            }
        }
    }

    /// Record a latency observation into a histogram.
    #[inline]
    pub fn observe(&mut self, name: &str, value: SimTime) {
        if !self.enabled {
            return;
        }
        match self.histograms.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = LatencyHistogram::new();
                h.record(value);
                self.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// A counter's value (zero if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> Option<&TimeWeighted> {
        self.gauges.get(name)
    }

    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        self.histograms.get(name)
    }

    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    pub fn gauges(&self) -> impl Iterator<Item = (&str, &TimeWeighted)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), v))
    }

    pub fn histograms(&self) -> impl Iterator<Item = (&str, &LatencyHistogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Deterministic text rendering of every metric; `now` closes out the
    /// time-weighted gauges.
    pub fn summary(&self, now: SimTime) -> String {
        let mut out = String::new();
        for (name, v) in self.counters() {
            let _ = writeln!(out, "counter   {name} = {v}");
        }
        for (name, g) in self.gauges() {
            let _ = writeln!(
                out,
                "gauge     {name}: mean {:.2}, max {:.2}",
                g.mean(now),
                g.max()
            );
        }
        for (name, h) in self.histograms() {
            let _ = writeln!(
                out,
                "histogram {name}: n={} p50 {} p95 {} p99 {} max {}",
                h.count(),
                h.p50(),
                h.p95(),
                h.p99(),
                h.max()
            );
        }
        out
    }

    /// OpenMetrics / Prometheus text exposition of every metric.
    ///
    /// Counters become `counter` families (`_total` samples), time-weighted
    /// gauges become `gauge` families with a `stat` label (`last`, `max`,
    /// `mean` — in that fixed order), and latency histograms become
    /// `summary` families with ascending `quantile` labels plus `_count` /
    /// `_sum` samples in seconds. Names are prefixed `cashmere_` with
    /// non-alphanumeric characters mapped to `_`; when that mangling makes
    /// two metric names collide (`a.b` vs `a_b`), the `# TYPE` / `# HELP`
    /// metadata is emitted once per family, not once per metric — parsers
    /// reject duplicate metadata lines. Family order follows the registry's
    /// sorted storage, so the output is byte-deterministic. `now` closes
    /// out the time-weighted gauges, as in [`MetricsRegistry::summary`].
    pub fn to_openmetrics(&self, now: SimTime) -> String {
        fn family(name: &str) -> String {
            let mut out = String::from("cashmere_");
            for c in name.chars() {
                if c.is_ascii_alphanumeric() {
                    out.push(c);
                } else {
                    out.push('_');
                }
            }
            out
        }
        let mut seen = std::collections::BTreeSet::new();
        let mut meta = |out: &mut String, f: &str, kind: &str, help: &str| {
            if seen.insert(f.to_string()) {
                let _ = writeln!(out, "# TYPE {f} {kind}");
                let _ = writeln!(out, "# HELP {f} {help}");
            }
        };
        let mut out = String::new();
        for (name, v) in self.counters() {
            let f = family(name);
            meta(&mut out, &f, "counter", &format!("Counter `{name}`."));
            let _ = writeln!(out, "{f}_total {v}");
        }
        for (name, g) in self.gauges() {
            let f = family(name);
            meta(
                &mut out,
                &f,
                "gauge",
                &format!("Time-weighted gauge `{name}`."),
            );
            let _ = writeln!(out, "{f}{{stat=\"last\"}} {}", g.value());
            let _ = writeln!(out, "{f}{{stat=\"max\"}} {}", g.max());
            let _ = writeln!(out, "{f}{{stat=\"mean\"}} {:.6}", g.mean(now));
        }
        for (name, h) in self.histograms() {
            let f = family(name);
            meta(
                &mut out,
                &f,
                "summary",
                &format!("Latency histogram `{name}`, seconds."),
            );
            for (label, q) in [("0.5", 0.50), ("0.95", 0.95), ("0.99", 0.99)] {
                let _ = writeln!(
                    out,
                    "{f}{{quantile=\"{label}\"}} {:.9}",
                    h.quantile(q).as_secs_f64()
                );
            }
            let _ = writeln!(out, "{f}_count {}", h.count());
            let _ = writeln!(out, "{f}_sum {:.9}", h.sum().as_secs_f64());
        }
        out.push_str("# EOF\n");
        out
    }
}

/// Escape a string for use inside an OpenMetrics label value: backslash,
/// double quote, and newline must be backslash-escaped per the exposition
/// format. Shared by every exporter that emits labels (this registry and
/// [`crate::obs::ProbeSeries::to_openmetrics`]).
pub fn escape_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn histogram_single_value_quantiles_are_exact() {
        let mut h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record(t(1500));
        }
        assert_eq!(h.p50(), t(1500));
        assert_eq!(h.p95(), t(1500));
        assert_eq!(h.p99(), t(1500));
        assert_eq!(h.min(), t(1500));
        assert_eq!(h.max(), t(1500));
        assert_eq!(h.mean(), t(1500));
    }

    #[test]
    fn histogram_quantiles_on_known_distribution() {
        // 90 values of ~1 µs, 9 of ~1 ms, 1 of ~1 s: p50 must sit in the µs
        // decade, p95 in the ms decade, p99+ reaches the outlier's bucket.
        let mut h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(t(1_000));
        }
        for _ in 0..9 {
            h.record(t(1_000_000));
        }
        h.record(t(1_000_000_000));
        assert_eq!(h.count(), 100);
        let p50 = h.p50().as_nanos();
        assert!((1_000..2_048).contains(&p50), "p50 = {p50}");
        // p95 lands in the 1 ms value's log2 bucket [2^19, 2^20); the
        // interpolated estimate stays inside it instead of snapping to the
        // upper bound.
        let p95 = h.p95().as_nanos();
        assert!((524_288..1_048_576).contains(&p95), "p95 = {p95}");
        let p995 = h.quantile(0.995).as_nanos();
        assert!(p995 >= 1_000_000_000, "p99.5 = {p995}");
        // Quantiles never exceed the observed maximum.
        assert!(h.quantile(1.0) <= h.max());
    }

    #[test]
    fn histogram_is_within_a_factor_of_two() {
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(t(v * 1_000));
        }
        let exact_p50 = 500_000u64;
        let got = h.p50().as_nanos();
        assert!(
            got >= exact_p50 / 2 && got <= exact_p50 * 2,
            "p50 {got} vs exact {exact_p50}"
        );
    }

    #[test]
    fn quantiles_interpolate_within_the_bucket() {
        // Uniform 1..=1000 µs: linear interpolation within the log2 bucket
        // lands within 10% of the exact quantile; the old upper-bound
        // readout was off by up to 2×.
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(t(v * 1_000));
        }
        for (q, exact) in [(0.50, 500_000.0), (0.95, 950_000.0), (0.99, 990_000.0)] {
            let got = h.quantile(q).as_nanos() as f64;
            let rel = (got - exact).abs() / exact;
            assert!(rel < 0.10, "q{q}: got {got}, exact {exact}, rel {rel:.3}");
        }
    }

    #[test]
    fn bucket_edge_mass_no_longer_over_reports() {
        // The regression case: every sample sits exactly on a bucket's
        // lower edge (1024 ns opens the [1024, 2048) bucket). The old
        // readout returned the bucket upper bound 2047 — a 2× over-report;
        // interpolation + min/max clamping recovers the exact value.
        let mut h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record(t(1024));
        }
        assert_eq!(h.p50(), t(1024));
        assert_eq!(h.p95(), t(1024));
        assert_eq!(h.p99(), t(1024));
    }

    #[test]
    fn histogram_handles_zero_and_empty() {
        let h = LatencyHistogram::new();
        assert_eq!(h.p50(), SimTime::ZERO);
        let mut h = LatencyHistogram::new();
        h.record(SimTime::ZERO);
        assert_eq!(h.p50(), SimTime::ZERO);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn registry_gates_on_enabled() {
        let mut m = MetricsRegistry::new();
        m.inc("a");
        m.observe("h", t(5));
        m.gauge_set("g", t(0), 1.0);
        assert!(m.is_empty());
        m.set_enabled(true);
        m.inc("a");
        m.add("a", 2);
        m.observe("h", t(5));
        m.gauge_set("g", t(0), 1.0);
        assert_eq!(m.counter("a"), 3);
        assert_eq!(m.histogram("h").unwrap().count(), 1);
        assert!(m.gauge("g").is_some());
    }

    #[test]
    fn gauge_tolerates_out_of_order_updates() {
        let mut m = MetricsRegistry::new();
        m.set_enabled(true);
        m.gauge_set("g", t(100), 2.0);
        // An earlier timestamp (overlapping submission) must not panic and
        // clamps to the last update time.
        m.gauge_set("g", t(50), 4.0);
        m.gauge_set("g", t(200), 0.0);
        let g = m.gauge("g").unwrap();
        assert_eq!(g.max(), 4.0);
        // Weighted mean over [100, 300): 2.0 held 0 ns, 4.0 held 100 ns,
        // 0.0 held 100 ns.
        assert!((g.mean(t(300)) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn openmetrics_exposition_has_type_help_and_eof() {
        let mut m = MetricsRegistry::new();
        m.set_enabled(true);
        m.add("steals.ok", 7);
        m.gauge_set("n0.dev0.queue", t(0), 2.0);
        m.gauge_set("n0.dev0.queue", t(100), 4.0);
        m.observe("pcie.h2d", t(1_000_000));
        let text = m.to_openmetrics(t(200));
        assert!(text.ends_with("# EOF\n"));
        assert!(text.contains("# TYPE cashmere_steals_ok counter"));
        assert!(text.contains("# HELP cashmere_steals_ok "));
        assert!(text.contains("cashmere_steals_ok_total 7"));
        assert!(text.contains("# TYPE cashmere_n0_dev0_queue gauge"));
        assert!(text.contains("cashmere_n0_dev0_queue{stat=\"last\"} 4"));
        assert!(text.contains("# TYPE cashmere_pcie_h2d summary"));
        assert!(text.contains("cashmere_pcie_h2d{quantile=\"0.5\"} 0.001000000"));
        assert!(text.contains("cashmere_pcie_h2d_count 1"));
        assert!(text.contains("cashmere_pcie_h2d_sum 0.001000000"));
        // `stat` labels render in fixed last < max < mean order.
        let last = text.find("stat=\"last\"").unwrap();
        let max = text.find("stat=\"max\"").unwrap();
        let mean = text.find("stat=\"mean\"").unwrap();
        assert!(last < max && max < mean);
        assert_eq!(text, m.to_openmetrics(t(200)), "byte-deterministic");
    }

    /// Minimal line-level OpenMetrics validator: metadata lines carry a
    /// family name and a payload, sample lines are `name[{labels}] value
    /// [timestamp]` with a sane name and parseable numbers, `# EOF` is the
    /// final line, and no family repeats its `# TYPE` / `# HELP` metadata.
    fn check_openmetrics_lines(text: &str) {
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(*lines.last().unwrap(), "# EOF", "must end with # EOF");
        let mut typed = std::collections::BTreeSet::new();
        for (i, line) in lines.iter().enumerate() {
            if *line == "# EOF" {
                assert_eq!(i, lines.len() - 1, "# EOF must be the last line");
                continue;
            }
            if let Some(rest) = line.strip_prefix("# ") {
                let (kw, rest) = rest.split_once(' ').expect("metadata keyword");
                assert!(kw == "TYPE" || kw == "HELP", "bad metadata line: {line}");
                let (fam, payload) = rest.split_once(' ').expect("family + payload");
                assert!(!payload.is_empty(), "empty metadata payload: {line}");
                if kw == "TYPE" {
                    assert!(typed.insert(fam.to_string()), "duplicate # TYPE {fam}");
                }
                continue;
            }
            // Sample line: split off labels if present, then value [+ ts].
            let (name, tail) = match line.split_once('{') {
                Some((n, rest)) => {
                    let (labels, tail) = rest.split_once('}').expect("unclosed label set");
                    for pair in labels.split(',') {
                        let (_, v) = pair.split_once('=').expect("label pair");
                        assert!(
                            v.starts_with('"') && v.ends_with('"'),
                            "unquoted label value: {line}"
                        );
                    }
                    (n, tail.trim_start())
                }
                None => {
                    let (n, tail) = line.split_once(' ').expect("sample needs a value");
                    (n, tail)
                }
            };
            assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "bad sample name: {name}"
            );
            for num in tail.split_whitespace() {
                num.parse::<f64>()
                    .unwrap_or_else(|_| panic!("unparseable number `{num}` in: {line}"));
            }
        }
    }

    #[test]
    fn openmetrics_parses_line_by_line() {
        let mut m = MetricsRegistry::new();
        m.set_enabled(true);
        m.add("steals.ok", 7);
        m.gauge_set("n0.dev0.queue", t(0), 2.0);
        m.observe("pcie.h2d", t(1_000_000));
        check_openmetrics_lines(&m.to_openmetrics(t(200)));

        // Probe exports pass the same validator (labels get escaped).
        let mut p = crate::obs::ProbeSeries::new(t(1000));
        p.sample(t(1000), &[("n0.busy".to_string(), 3.0)]);
        check_openmetrics_lines(&p.to_openmetrics());
    }

    #[test]
    fn openmetrics_dedupes_metadata_for_colliding_families() {
        // `steals.ok` and `steals_ok` both mangle to `cashmere_steals_ok`;
        // the exposition must carry that family's metadata exactly once.
        let mut m = MetricsRegistry::new();
        m.set_enabled(true);
        m.add("steals.ok", 7);
        m.add("steals_ok", 3);
        let text = m.to_openmetrics(t(0));
        let type_lines = text
            .lines()
            .filter(|l| *l == "# TYPE cashmere_steals_ok counter")
            .count();
        assert_eq!(type_lines, 1, "metadata must be deduped:\n{text}");
        assert_eq!(
            text.lines()
                .filter(|l| l.starts_with("cashmere_steals_ok_total "))
                .count(),
            2,
            "both samples survive:\n{text}"
        );
        check_openmetrics_lines(&text);
    }

    #[test]
    fn label_values_escape_specials() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn summary_is_deterministic_and_sorted() {
        let mut m = MetricsRegistry::new();
        m.set_enabled(true);
        m.inc("z.last");
        m.inc("a.first");
        m.observe("lat", t(1000));
        let s1 = m.summary(t(2000));
        let s2 = m.summary(t(2000));
        assert_eq!(s1, s2);
        let a = s1.find("a.first").unwrap();
        let z = s1.find("z.last").unwrap();
        assert!(a < z, "counters render in sorted order");
    }
}
