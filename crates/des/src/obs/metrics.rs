//! Metrics registry: named counters, time-weighted gauges and log-scaled
//! latency histograms.
//!
//! Everything here is deterministic: storage is `BTreeMap`-keyed, histogram
//! buckets are powers of two of simulated nanoseconds, and no wall-clock or
//! RNG state is consulted, so two identical seeded runs render byte-identical
//! summaries. Recording is gated by an `enabled` flag (set alongside trace
//! recording) so the hot path costs one branch when observability is off.

use crate::stats::TimeWeighted;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Number of log2 buckets: bucket `i` holds durations with bit length `i`,
/// i.e. `[2^(i-1), 2^i)` ns (bucket 0 holds exact zeros).
const BUCKETS: usize = 65;

/// A latency histogram with logarithmic (power-of-two) buckets.
///
/// Quantiles are resolved to a bucket's upper bound clamped into the observed
/// `[min, max]` range, so they are exact for single-valued distributions and
/// accurate to within a factor of two otherwise — plenty for telling a 2 µs
/// steal RTT from a 2 ms PCIe transfer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }
}

fn bucket_index(ns: u64) -> usize {
    (u64::BITS - ns.leading_zeros()) as usize
}

fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, value: SimTime) {
        let ns = value.as_nanos();
        self.buckets[bucket_index(ns)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn min(&self) -> SimTime {
        SimTime::from_nanos(if self.count == 0 { 0 } else { self.min_ns })
    }

    pub fn max(&self) -> SimTime {
        SimTime::from_nanos(self.max_ns)
    }

    pub fn mean(&self) -> SimTime {
        SimTime::from_nanos(self.sum_ns.checked_div(self.count).unwrap_or(0))
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) of the recorded values, resolved to
    /// bucket granularity.
    pub fn quantile(&self, q: f64) -> SimTime {
        if self.count == 0 {
            return SimTime::ZERO;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                return SimTime::from_nanos(bucket_upper_bound(i).clamp(self.min_ns, self.max_ns));
            }
        }
        SimTime::from_nanos(self.max_ns)
    }

    pub fn p50(&self) -> SimTime {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> SimTime {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> SimTime {
        self.quantile(0.99)
    }
}

/// Central registry of named metrics, owned by the simulation
/// ([`crate::Sim::metrics`]). Names are dotted paths such as
/// `node1.busy_cores` or `pcie.h2d`.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    enabled: bool,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, TimeWeighted>,
    histograms: BTreeMap<String, LatencyHistogram>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Turn recording on or off (mirrors [`crate::Trace::set_enabled`]).
    #[inline]
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Increment a counter by one.
    #[inline]
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Increment a counter by `delta`.
    #[inline]
    pub fn add(&mut self, name: &str, delta: u64) {
        if !self.enabled {
            return;
        }
        match self.counters.get_mut(name) {
            Some(c) => *c += delta,
            None => {
                self.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Set a time-weighted gauge to `value` at simulated time `now`.
    /// Out-of-order timestamps (overlapping leaves submit into the future)
    /// are clamped to the gauge's last update time.
    #[inline]
    pub fn gauge_set(&mut self, name: &str, now: SimTime, value: f64) {
        if !self.enabled {
            return;
        }
        match self.gauges.get_mut(name) {
            Some(g) => g.update_clamped(now, value),
            None => {
                self.gauges
                    .insert(name.to_string(), TimeWeighted::new(now, value));
            }
        }
    }

    /// Record a latency observation into a histogram.
    #[inline]
    pub fn observe(&mut self, name: &str, value: SimTime) {
        if !self.enabled {
            return;
        }
        match self.histograms.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = LatencyHistogram::new();
                h.record(value);
                self.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// A counter's value (zero if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn gauge(&self, name: &str) -> Option<&TimeWeighted> {
        self.gauges.get(name)
    }

    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        self.histograms.get(name)
    }

    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    pub fn gauges(&self) -> impl Iterator<Item = (&str, &TimeWeighted)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), v))
    }

    pub fn histograms(&self) -> impl Iterator<Item = (&str, &LatencyHistogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Deterministic text rendering of every metric; `now` closes out the
    /// time-weighted gauges.
    pub fn summary(&self, now: SimTime) -> String {
        let mut out = String::new();
        for (name, v) in self.counters() {
            let _ = writeln!(out, "counter   {name} = {v}");
        }
        for (name, g) in self.gauges() {
            let _ = writeln!(
                out,
                "gauge     {name}: mean {:.2}, max {:.2}",
                g.mean(now),
                g.max()
            );
        }
        for (name, h) in self.histograms() {
            let _ = writeln!(
                out,
                "histogram {name}: n={} p50 {} p95 {} p99 {} max {}",
                h.count(),
                h.p50(),
                h.p95(),
                h.p99(),
                h.max()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn histogram_single_value_quantiles_are_exact() {
        let mut h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record(t(1500));
        }
        assert_eq!(h.p50(), t(1500));
        assert_eq!(h.p95(), t(1500));
        assert_eq!(h.p99(), t(1500));
        assert_eq!(h.min(), t(1500));
        assert_eq!(h.max(), t(1500));
        assert_eq!(h.mean(), t(1500));
    }

    #[test]
    fn histogram_quantiles_on_known_distribution() {
        // 90 values of ~1 µs, 9 of ~1 ms, 1 of ~1 s: p50 must sit in the µs
        // decade, p95 in the ms decade, p99+ reaches the outlier's bucket.
        let mut h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(t(1_000));
        }
        for _ in 0..9 {
            h.record(t(1_000_000));
        }
        h.record(t(1_000_000_000));
        assert_eq!(h.count(), 100);
        let p50 = h.p50().as_nanos();
        assert!((1_000..2_048).contains(&p50), "p50 = {p50}");
        let p95 = h.p95().as_nanos();
        assert!((1_000_000..2_097_152).contains(&p95), "p95 = {p95}");
        let p995 = h.quantile(0.995).as_nanos();
        assert!(p995 >= 1_000_000_000, "p99.5 = {p995}");
        // Quantiles never exceed the observed maximum.
        assert!(h.quantile(1.0) <= h.max());
    }

    #[test]
    fn histogram_is_within_a_factor_of_two() {
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(t(v * 1_000));
        }
        let exact_p50 = 500_000u64;
        let got = h.p50().as_nanos();
        assert!(
            got >= exact_p50 / 2 && got <= exact_p50 * 2,
            "p50 {got} vs exact {exact_p50}"
        );
    }

    #[test]
    fn histogram_handles_zero_and_empty() {
        let h = LatencyHistogram::new();
        assert_eq!(h.p50(), SimTime::ZERO);
        let mut h = LatencyHistogram::new();
        h.record(SimTime::ZERO);
        assert_eq!(h.p50(), SimTime::ZERO);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn registry_gates_on_enabled() {
        let mut m = MetricsRegistry::new();
        m.inc("a");
        m.observe("h", t(5));
        m.gauge_set("g", t(0), 1.0);
        assert!(m.is_empty());
        m.set_enabled(true);
        m.inc("a");
        m.add("a", 2);
        m.observe("h", t(5));
        m.gauge_set("g", t(0), 1.0);
        assert_eq!(m.counter("a"), 3);
        assert_eq!(m.histogram("h").unwrap().count(), 1);
        assert!(m.gauge("g").is_some());
    }

    #[test]
    fn gauge_tolerates_out_of_order_updates() {
        let mut m = MetricsRegistry::new();
        m.set_enabled(true);
        m.gauge_set("g", t(100), 2.0);
        // An earlier timestamp (overlapping submission) must not panic and
        // clamps to the last update time.
        m.gauge_set("g", t(50), 4.0);
        m.gauge_set("g", t(200), 0.0);
        let g = m.gauge("g").unwrap();
        assert_eq!(g.max(), 4.0);
        // Weighted mean over [100, 300): 2.0 held 0 ns, 4.0 held 100 ns,
        // 0.0 held 100 ns.
        assert!((g.mean(t(300)) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn summary_is_deterministic_and_sorted() {
        let mut m = MetricsRegistry::new();
        m.set_enabled(true);
        m.inc("z.last");
        m.inc("a.first");
        m.observe("lat", t(1000));
        let s1 = m.summary(t(2000));
        let s2 = m.summary(t(2000));
        assert_eq!(s1, s2);
        let a = s1.find("a.first").unwrap();
        let z = s1.find("z.last").unwrap();
        assert!(a < z, "counters render in sorted order");
    }
}
