//! Chrome trace-event JSON export for [`Trace`], openable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! Lanes become named tracks (`thread_name` metadata + `tid`), every span
//! becomes a complete (`"X"`) event, and every causal parent→child edge that
//! crosses lanes becomes a flow arrow (`"s"`/`"f"` pair) — which is exactly
//! the set of steals, result transfers and host↔device hops.
//!
//! The writer is hand-rolled so the byte layout is fully deterministic:
//! events are emitted in lane order then span-recording order, timestamps are
//! fixed-point microseconds (`ns/1000` with three decimals), and no wall
//! clock is consulted. Two identical seeded runs produce identical bytes.

use crate::obs::timeline::UtilizationTimelines;
use crate::time::SimTime;
use crate::trace::Trace;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Append a JSON string literal (mirrors the `serde_json` shim's escaping).
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a trace-event timestamp: microseconds with fixed three-decimal
/// nanosecond precision (deterministic, no float formatting involved).
pub(crate) fn push_ts(out: &mut String, t: SimTime) {
    let ns = t.as_nanos();
    let _ = write!(out, "{}.{:03}", ns / 1000, ns % 1000);
}

impl Trace {
    /// Export the trace in Chrome trace-event JSON format.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut sep = |out: &mut String| {
            if first {
                first = false;
            } else {
                out.push(',');
            }
            out.push('\n');
        };
        // Track names: one metadata event per lane, tid = lane index.
        for (i, name) in self.lane_names().iter().enumerate() {
            sep(&mut out);
            out.push_str("{\"ph\":\"M\",\"name\":\"thread_name\",\"cat\":\"__metadata\",");
            let _ = write!(out, "\"pid\":1,\"tid\":{i},\"ts\":0,\"args\":{{\"name\":");
            push_json_str(&mut out, name);
            out.push_str("}}");
        }
        // Spans: complete events carrying their tree ids in `args`.
        for s in self.spans() {
            sep(&mut out);
            out.push_str("{\"ph\":\"X\",\"name\":");
            push_json_str(&mut out, &s.label);
            let _ = write!(
                out,
                ",\"cat\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":",
                s.kind.name(),
                s.lane.0
            );
            push_ts(&mut out, s.start);
            out.push_str(",\"dur\":");
            push_ts(&mut out, s.end - s.start);
            let _ = write!(out, ",\"args\":{{\"span\":{}", s.id.0);
            match s.parent {
                Some(p) => {
                    let _ = write!(out, ",\"parent\":{}", p.0);
                }
                None => out.push_str(",\"parent\":null"),
            }
            out.push_str("}}");
        }
        // Flow arrows for causal edges that cross lanes (steals, transfers).
        for s in self.spans() {
            let Some(parent) = s.parent.and_then(|p| self.span(p)) else {
                continue;
            };
            if parent.lane == s.lane {
                continue;
            }
            // The arrow leaves the parent no later than the child starts.
            let depart = parent.end.min(s.start);
            sep(&mut out);
            out.push_str("{\"ph\":\"s\",\"name\":");
            push_json_str(&mut out, &s.label);
            let _ = write!(
                out,
                ",\"cat\":\"flow\",\"id\":{},\"pid\":1,\"tid\":{},\"ts\":",
                s.id.0, parent.lane.0
            );
            push_ts(&mut out, depart);
            out.push('}');
            sep(&mut out);
            out.push_str("{\"ph\":\"f\",\"bp\":\"e\",\"name\":");
            push_json_str(&mut out, &s.label);
            let _ = write!(
                out,
                ",\"cat\":\"flow\",\"id\":{},\"pid\":1,\"tid\":{},\"ts\":",
                s.id.0, s.lane.0
            );
            push_ts(&mut out, s.start);
            out.push('}');
        }
        // Utilization counter tracks: one `ph:"C"` series per lane, named
        // `util:<lane>`, reusing the lane's existing tid and thread_name
        // metadata (no duplicate lane registration). Lanes that recorded no
        // spans emit nothing — `UtilizationTimelines` omits them — so the
        // export never grows empty named counter rows.
        let util = UtilizationTimelines::compute(self);
        for lane in &util.lanes {
            let name = format!("util:{}", lane.name);
            for (ts, v) in &lane.points {
                sep(&mut out);
                out.push_str("{\"ph\":\"C\",\"name\":");
                push_json_str(&mut out, &name);
                let _ = write!(
                    out,
                    ",\"cat\":\"util\",\"pid\":1,\"tid\":{},\"ts\":",
                    lane.lane
                );
                push_ts(&mut out, *ts);
                let _ = write!(out, ",\"args\":{{\"util\":{v}}}");
                out.push('}');
            }
        }
        out.push_str("\n],\"displayTimeUnit\":\"ns\"}");
        out
    }
}

/// Deserialized form of an exported trace; lets tests and CI validate the
/// emitted JSON through `serde_json` without a real Chrome around.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[allow(non_snake_case)]
pub struct ChromeTrace {
    pub traceEvents: Vec<ChromeEvent>,
    pub displayTimeUnit: String,
}

/// One event of a [`ChromeTrace`]; optional fields are phase-dependent.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChromeEvent {
    pub ph: String,
    pub name: String,
    pub cat: String,
    pub pid: u64,
    pub tid: u64,
    pub ts: f64,
    pub dur: Option<f64>,
    pub id: Option<u64>,
    pub bp: Option<String>,
    pub args: Option<ChromeArgs>,
}

/// The `args` payload: `name` on metadata events, `span`/`parent` on
/// spans, `util` on counter samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChromeArgs {
    pub name: Option<String>,
    pub span: Option<u64>,
    pub parent: Option<u64>,
    pub util: Option<u64>,
}

impl ChromeTrace {
    /// Distinct track lanes, i.e. `thread_name` metadata events.
    pub fn lane_count(&self) -> usize {
        self.traceEvents
            .iter()
            .filter(|e| e.ph == "M" && e.name == "thread_name")
            .count()
    }

    /// Flow-start events (`"s"`) whose name matches `label`.
    pub fn flow_count(&self, label: &str) -> usize {
        self.traceEvents
            .iter()
            .filter(|e| e.ph == "s" && e.name == label)
            .count()
    }

    /// Distinct counter tracks (`"C"` event names), in first-seen order.
    pub fn counter_tracks(&self) -> Vec<&str> {
        let mut seen: Vec<&str> = Vec::new();
        for e in self.traceEvents.iter().filter(|e| e.ph == "C") {
            if !seen.contains(&e.name.as_str()) {
                seen.push(&e.name);
            }
        }
        seen
    }

    /// Counter samples on the named track.
    pub fn counter_samples(&self, track: &str) -> Vec<(f64, u64)> {
        self.traceEvents
            .iter()
            .filter(|e| e.ph == "C" && e.name == track)
            .map(|e| (e.ts, e.args.as_ref().and_then(|a| a.util).unwrap_or(0)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SpanKind;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn chrome_json_round_trips_through_serde_json() {
        let mut tr = Trace::new();
        tr.set_enabled(true);
        let cpu = tr.add_lane("node0.cpu");
        let net = tr.add_lane("node0.net");
        let dev = tr.add_lane("n0.gpu0.exec");
        let divide = tr.record(cpu, SpanKind::CpuTask, "divide", t(0), t(10));
        let steal = tr.record_child(net, SpanKind::Steal, "steal", t(10), t(30), divide);
        let leaf = tr.record_child(cpu, SpanKind::CpuTask, "leaf", t(31), t(400), steal);
        tr.record_child(
            dev,
            SpanKind::Kernel,
            "kmeans \"v2\"\n",
            t(40),
            t(390),
            leaf,
        );
        let json = tr.to_chrome_json();
        let parsed: ChromeTrace = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(parsed.displayTimeUnit, "ns");
        assert_eq!(parsed.lane_count(), 3);
        // 4 X events with ids threaded through args.
        let xs: Vec<_> = parsed.traceEvents.iter().filter(|e| e.ph == "X").collect();
        assert_eq!(xs.len(), 4);
        assert_eq!(xs[0].args.as_ref().unwrap().span, Some(0));
        assert_eq!(xs[1].args.as_ref().unwrap().parent, Some(0));
        assert_eq!(xs[0].args.as_ref().unwrap().parent, None);
        // Three cross-lane edges -> three s/f pairs; the steal has one.
        assert_eq!(parsed.flow_count("steal"), 1);
        let fs = parsed.traceEvents.iter().filter(|e| e.ph == "f").count();
        assert_eq!(fs, 3);
        // Every active lane gets a utilization counter track whose samples
        // carry occupancy in args.util.
        assert_eq!(
            parsed.counter_tracks(),
            vec!["util:node0.cpu", "util:node0.net", "util:n0.gpu0.exec"]
        );
        let cpu_util = parsed.counter_samples("util:node0.cpu");
        assert!(cpu_util.contains(&(0.0, 1)), "{cpu_util:?}");
        assert_eq!(cpu_util.last(), Some(&(400.0, 0)));
        // Timestamps are microseconds.
        assert_eq!(xs[0].ts, 0.0);
        assert_eq!(xs[0].dur, Some(10.0));
        // Re-serializing the parsed form is itself valid JSON.
        let again = serde_json::to_string(&parsed).unwrap();
        let reparsed: ChromeTrace = serde_json::from_str(&again).unwrap();
        assert_eq!(reparsed.traceEvents.len(), parsed.traceEvents.len());
    }

    #[test]
    fn same_lane_children_emit_no_flow() {
        let mut tr = Trace::new();
        tr.set_enabled(true);
        let cpu = tr.add_lane("cpu");
        let a = tr.record(cpu, SpanKind::CpuTask, "a", t(0), t(5));
        tr.record_child(cpu, SpanKind::CpuTask, "b", t(5), t(9), a);
        let parsed: ChromeTrace = serde_json::from_str(&tr.to_chrome_json()).unwrap();
        assert!(parsed.traceEvents.iter().all(|e| e.ph != "s"));
    }

    #[test]
    fn export_is_byte_identical_across_identical_traces() {
        let build = || {
            let mut tr = Trace::new();
            tr.set_enabled(true);
            let a = tr.add_lane("a");
            let b = tr.add_lane("b");
            let r = tr.record(a, SpanKind::CpuTask, "root", t(0), t(3));
            tr.record_child(b, SpanKind::Network, "hop", t(3), t(7), r);
            tr.to_chrome_json()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn zero_span_lanes_emit_no_counter_track() {
        let mut tr = Trace::new();
        tr.set_enabled(true);
        let a = tr.add_lane("active");
        let _idle = tr.add_lane("idle"); // registered, never records a span
        tr.record(a, SpanKind::Kernel, "k", t(0), t(10));
        let parsed: ChromeTrace = serde_json::from_str(&tr.to_chrome_json()).unwrap();
        // Both lanes keep their thread_name metadata (spans could still
        // target them in another run) …
        assert_eq!(parsed.lane_count(), 2);
        // … but only the active lane gets a counter track, and no second
        // metadata event is emitted for the counter (lane registration is
        // shared between spans and counters).
        assert_eq!(parsed.counter_tracks(), vec!["util:active"]);
        let metadata = parsed.traceEvents.iter().filter(|e| e.ph == "M").count();
        assert_eq!(metadata, 2);
    }

    #[test]
    fn fractional_microsecond_timestamps_keep_ns_precision() {
        let mut tr = Trace::new();
        tr.set_enabled(true);
        let a = tr.add_lane("a");
        tr.record(
            a,
            SpanKind::Other,
            "x",
            SimTime::from_nanos(1234),
            SimTime::from_nanos(5678),
        );
        let json = tr.to_chrome_json();
        assert!(json.contains("\"ts\":1.234"));
        assert!(json.contains("\"dur\":4.444"));
    }
}
