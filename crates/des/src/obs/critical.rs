//! Critical-path analysis over the causal span tree.
//!
//! Walks backwards from the latest-ending span (the final combine) to time
//! zero, attributing every nanosecond of the makespan to the span that was
//! "holding things up" at that moment: the span covering the current instant,
//! or — when nothing had finished yet — a synthetic `wait` segment. The
//! per-kind attribution therefore sums to the horizon *exactly*, which is
//! what lets a bench run print "makespan = X, critical path = 62% kernel /
//! 23% PCIe / 15% steal" and have the percentages mean something.
//!
//! The predecessor of a span is the latest-ending span that finished no
//! later than the current span started, preferring the recorded causal
//! parent on ties; this approximates the true dependency chain using only
//! interval endpoints plus the parent links, and is exact for the serialized
//! engine timelines (device queues, NIC ports) the simulator produces.

use crate::time::SimTime;
use crate::trace::Trace;
use std::collections::BTreeMap;

/// One segment of the critical path (chronological order).
#[derive(Debug, Clone)]
pub struct CriticalSegment {
    /// [`crate::SpanKind::name`] of the responsible span, or `"wait"`.
    pub kind: String,
    /// Label of the responsible span (empty for waits).
    pub label: String,
    pub start: SimTime,
    pub end: SimTime,
}

/// The critical path of a recorded run.
#[derive(Debug, Clone, Default)]
pub struct CriticalPath {
    /// The horizon the path covers; equals the sum over `by_kind`.
    pub total: SimTime,
    /// Time attributed to each span kind (plus `"wait"` for idle gaps).
    pub by_kind: BTreeMap<String, SimTime>,
    /// The chain itself, earliest segment first.
    pub segments: Vec<CriticalSegment>,
}

impl CriticalPath {
    /// Compute the critical path of `trace`. Empty traces yield an empty
    /// path with `total == 0`.
    pub fn compute(trace: &Trace) -> CriticalPath {
        let spans = trace.spans();
        let mut path = CriticalPath::default();
        if spans.is_empty() {
            return path;
        }
        // Spans sorted by (end, recording index): binary-searchable for
        // "latest end <= t", deterministic tie-breaks.
        let mut order: Vec<usize> = (0..spans.len()).collect();
        order.sort_by_key(|&i| (spans[i].end, i));
        let mut visited = vec![false; spans.len()];

        let mut cur = *order.last().unwrap();
        let mut t = spans[cur].end;
        path.total = t;
        loop {
            visited[cur] = true;
            let s = &spans[cur];
            let seg_start = s.start.min(t);
            if t > seg_start {
                path.push_segment(s.kind.name(), &s.label, seg_start, t);
            }
            t = seg_start;
            if t == SimTime::ZERO {
                break;
            }
            // Latest-ending unvisited span that finished by `t`.
            let cut = order.partition_point(|&i| spans[i].end <= t);
            let mut next = order[..cut].iter().rev().copied().find(|&i| !visited[i]);
            // Prefer the causal parent when it ends at the same instant.
            if let (Some(n), Some(p)) = (next, s.parent) {
                let p = p.0 as usize;
                if !visited[p] && spans[p].end == spans[n].end && spans[p].end <= t {
                    next = Some(p);
                }
            }
            match next {
                None => {
                    path.push_segment("wait", "", SimTime::ZERO, t);
                    break;
                }
                Some(n) => {
                    if spans[n].end < t {
                        path.push_segment("wait", "", spans[n].end, t);
                        t = spans[n].end;
                    }
                    cur = n;
                }
            }
        }
        path.segments.reverse();
        path
    }

    fn push_segment(&mut self, kind: &str, label: &str, start: SimTime, end: SimTime) {
        *self
            .by_kind
            .entry(kind.to_string())
            .or_insert(SimTime::ZERO) += end - start;
        self.segments.push(CriticalSegment {
            kind: kind.to_string(),
            label: label.to_string(),
            start,
            end,
        });
    }

    /// Per-kind attribution sorted by share, largest first:
    /// `(kind, time, percent of total)`.
    pub fn attribution(&self) -> Vec<(String, SimTime, f64)> {
        let mut rows: Vec<_> = self.by_kind.iter().map(|(k, &v)| (k.clone(), v)).collect();
        // Sort by descending time, then name for deterministic ties.
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let total = self.total.as_nanos().max(1) as f64;
        rows.into_iter()
            .map(|(k, v)| {
                let pct = v.as_nanos() as f64 / total * 100.0;
                (k, v, pct)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SpanKind;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn empty_trace_yields_empty_path() {
        let tr = Trace::new();
        let cp = CriticalPath::compute(&tr);
        assert_eq!(cp.total, SimTime::ZERO);
        assert!(cp.segments.is_empty());
    }

    #[test]
    fn chain_attributes_every_nanosecond() {
        let mut tr = Trace::new();
        tr.set_enabled(true);
        let cpu = tr.add_lane("cpu");
        let dev = tr.add_lane("dev");
        let a = tr.record(cpu, SpanKind::CpuTask, "divide", t(0), t(10));
        let b = tr.record_child(dev, SpanKind::CopyToDevice, "h2d", t(10), t(14), a);
        let c = tr.record_child(dev, SpanKind::Kernel, "k", t(14), t(80), b);
        tr.record_child(cpu, SpanKind::CpuTask, "combine", t(80), t(100), c);
        let cp = CriticalPath::compute(&tr);
        assert_eq!(cp.total, t(100));
        assert_eq!(cp.by_kind["cpu"], t(30));
        assert_eq!(cp.by_kind["copy_to_device"], t(4));
        assert_eq!(cp.by_kind["kernel"], t(66));
        assert!(!cp.by_kind.contains_key("wait"));
        let sum: SimTime = cp.by_kind.values().copied().sum();
        assert_eq!(sum, cp.total, "attribution tiles the makespan");
        // Chronological segments.
        assert_eq!(cp.segments.first().unwrap().label, "divide");
        assert_eq!(cp.segments.last().unwrap().label, "combine");
    }

    #[test]
    fn gaps_become_wait_segments() {
        let mut tr = Trace::new();
        tr.set_enabled(true);
        let l = tr.add_lane("l");
        tr.record(l, SpanKind::Kernel, "k1", t(5), t(10));
        tr.record(l, SpanKind::Kernel, "k2", t(20), t(30));
        let cp = CriticalPath::compute(&tr);
        assert_eq!(cp.total, t(30));
        assert_eq!(cp.by_kind["kernel"], t(15));
        // [0,5) before k1 plus [10,20) between the kernels.
        assert_eq!(cp.by_kind["wait"], t(15));
        let sum: SimTime = cp.by_kind.values().copied().sum();
        assert_eq!(sum, cp.total);
    }

    #[test]
    fn overlapping_spans_do_not_double_count() {
        let mut tr = Trace::new();
        tr.set_enabled(true);
        let a = tr.add_lane("a");
        let b = tr.add_lane("b");
        tr.record(a, SpanKind::Kernel, "k1", t(0), t(60));
        tr.record(b, SpanKind::Kernel, "k2", t(0), t(50));
        let cp = CriticalPath::compute(&tr);
        assert_eq!(cp.total, t(60));
        let sum: SimTime = cp.by_kind.values().copied().sum();
        assert_eq!(sum, cp.total);
    }

    #[test]
    fn zero_length_spans_terminate() {
        let mut tr = Trace::new();
        tr.set_enabled(true);
        let a = tr.add_lane("a");
        tr.record(a, SpanKind::Other, "z1", t(10), t(10));
        tr.record(a, SpanKind::Other, "z2", t(10), t(10));
        tr.record(a, SpanKind::Kernel, "k", t(0), t(10));
        let cp = CriticalPath::compute(&tr);
        assert_eq!(cp.total, t(10));
        let sum: SimTime = cp.by_kind.values().copied().sum();
        assert_eq!(sum, cp.total);
    }

    #[test]
    fn attribution_is_sorted_and_percentages_sum() {
        let mut tr = Trace::new();
        tr.set_enabled(true);
        let l = tr.add_lane("l");
        tr.record(l, SpanKind::Kernel, "k", t(0), t(70));
        tr.record(l, SpanKind::Network, "n", t(70), t(100));
        let cp = CriticalPath::compute(&tr);
        let rows = cp.attribution();
        assert_eq!(rows[0].0, "kernel");
        assert!((rows[0].2 - 70.0).abs() < 1e-9);
        let pct: f64 = rows.iter().map(|r| r.2).sum();
        assert!((pct - 100.0).abs() < 1e-9);
    }
}
