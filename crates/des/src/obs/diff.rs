//! Regression explainer: attribute the delta between two runs.
//!
//! Selfbench (PR 3) can say "events/sec regressed >30%" and the chaos
//! sweep (PR 6) can say "level 2 costs 1.4x", but neither says *why*. This
//! module compares two [`RunFingerprint`]s — makespan, critical-path kind
//! breakdown, per-node busy time, scalar counters, and optionally a
//! [`ProbeSeries`] — and emits a ranked "what changed" digest:
//!
//! * **critical-path attribution**: which span kind (kernel, network,
//!   steal, …) absorbed what share of the makespan delta;
//! * **phase window**: where in virtual time the probed series diverge
//!   most, and which column dominates that divergence;
//! * **per-node divergence**: which nodes' busy time moved;
//! * **counter deltas**: every scalar that changed, ranked by relative
//!   magnitude.
//!
//! Everything is exact arithmetic over deterministic inputs, so two runs
//! of the same scenario and seed diff to [`RunDiff::is_zero`] — the
//! property the CI smoke and the `diff` bench bin's `--assert-zero` lean
//! on.

use crate::obs::probe::ProbeSeries;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Everything the explainer needs to know about one run. Built by the
/// bench layer from a captured run (report + trace + probes) or
/// reconstructed from a committed artifact's counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunFingerprint {
    pub label: String,
    /// Zero when unknown (e.g. a counters-only selfbench fingerprint).
    pub makespan: SimTime,
    /// Critical-path time by span kind, from [`super::CriticalPath`].
    pub crit: BTreeMap<String, SimTime>,
    /// Per-node busy time, indexed by node id.
    pub node_busy: Vec<SimTime>,
    /// Scalar counters (steals, bytes, crashes, events/sec, …).
    pub counters: BTreeMap<String, f64>,
    pub probes: Option<ProbeSeries>,
}

impl RunFingerprint {
    /// A counters-only fingerprint (no makespan / path / probe data) —
    /// what selfbench `--check` builds from two `BENCH_sim.json` files.
    pub fn counters_only(label: &str, counters: BTreeMap<String, f64>) -> RunFingerprint {
        RunFingerprint {
            label: label.to_string(),
            makespan: SimTime::ZERO,
            crit: BTreeMap::new(),
            node_busy: Vec::new(),
            counters,
            probes: None,
        }
    }
}

/// One ranked attribution row: a critical-path kind or a counter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiffFactor {
    pub name: String,
    pub base: f64,
    pub other: f64,
    pub delta: f64,
    /// For critical-path factors: this kind's share of the makespan delta
    /// (can exceed 100% when kinds move in opposite directions). For
    /// counters: the relative change in percent, or infinity for a counter
    /// appearing from zero.
    pub share_pct: f64,
}

/// Busy-time movement on one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeDivergence {
    pub node: usize,
    pub base_busy_s: f64,
    pub other_busy_s: f64,
    pub delta_s: f64,
}

/// The virtual-time window where the two probe series diverge most: the
/// contiguous region around the peak tick where per-tick divergence stays
/// above half its maximum, plus the column dominating it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseWindow {
    pub from: SimTime,
    pub until: SimTime,
    pub peak: SimTime,
    pub top_column: String,
}

/// The computed diff between two fingerprints. Serializable so the `diff`
/// bin can write it next to the digest it prints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunDiff {
    pub base: String,
    pub other: String,
    pub makespan_base_s: f64,
    pub makespan_other_s: f64,
    pub makespan_delta_s: f64,
    /// Critical-path kinds with a nonzero delta, ranked by |delta|.
    pub factors: Vec<DiffFactor>,
    /// Counters with a nonzero delta, ranked by relative magnitude.
    pub counters: Vec<DiffFactor>,
    /// Nodes whose busy time moved, ranked by |delta|.
    pub nodes: Vec<NodeDivergence>,
    pub phase: Option<PhaseWindow>,
}

fn union_keys<'a, V>(a: &'a BTreeMap<String, V>, b: &'a BTreeMap<String, V>) -> Vec<&'a str> {
    let mut keys: Vec<&str> = a.keys().map(String::as_str).collect();
    keys.extend(b.keys().map(String::as_str));
    keys.sort_unstable();
    keys.dedup();
    keys
}

impl RunDiff {
    pub fn compute(base: &RunFingerprint, other: &RunFingerprint) -> RunDiff {
        let mb = base.makespan.as_secs_f64();
        let mo = other.makespan.as_secs_f64();
        let mdelta = mo - mb;

        // Critical-path kinds: share of the makespan delta each absorbed.
        let mut factors = Vec::new();
        for kind in union_keys(&base.crit, &other.crit) {
            let b = base.crit.get(kind).copied().unwrap_or(SimTime::ZERO);
            let o = other.crit.get(kind).copied().unwrap_or(SimTime::ZERO);
            let delta = o.as_secs_f64() - b.as_secs_f64();
            if delta == 0.0 {
                continue;
            }
            let share_pct = if mdelta != 0.0 {
                100.0 * delta / mdelta
            } else {
                0.0
            };
            factors.push(DiffFactor {
                name: kind.to_string(),
                base: b.as_secs_f64(),
                other: o.as_secs_f64(),
                delta,
                share_pct,
            });
        }
        factors.sort_by(|x, y| y.delta.abs().total_cmp(&x.delta.abs()));

        // Counters: rank by relative change so bytes and counts compare.
        let mut counters = Vec::new();
        for key in union_keys(&base.counters, &other.counters) {
            let b = base.counters.get(key).copied().unwrap_or(0.0);
            let o = other.counters.get(key).copied().unwrap_or(0.0);
            if b == o {
                continue;
            }
            let share_pct = if b != 0.0 {
                100.0 * (o - b) / b.abs()
            } else {
                f64::INFINITY
            };
            counters.push(DiffFactor {
                name: key.to_string(),
                base: b,
                other: o,
                delta: o - b,
                share_pct,
            });
        }
        counters.sort_by(|x, y| y.share_pct.abs().total_cmp(&x.share_pct.abs()));

        // Per-node busy-time divergence.
        let mut nodes = Vec::new();
        let n = base.node_busy.len().max(other.node_busy.len());
        for i in 0..n {
            let b = base.node_busy.get(i).copied().unwrap_or(SimTime::ZERO);
            let o = other.node_busy.get(i).copied().unwrap_or(SimTime::ZERO);
            let delta_s = o.as_secs_f64() - b.as_secs_f64();
            if delta_s != 0.0 {
                nodes.push(NodeDivergence {
                    node: i,
                    base_busy_s: b.as_secs_f64(),
                    other_busy_s: o.as_secs_f64(),
                    delta_s,
                });
            }
        }
        nodes.sort_by(|x, y| {
            y.delta_s
                .abs()
                .total_cmp(&x.delta_s.abs())
                .then(x.node.cmp(&y.node))
        });

        let phase = match (&base.probes, &other.probes) {
            (Some(a), Some(b)) => phase_window(a, b),
            _ => None,
        };

        RunDiff {
            base: base.label.clone(),
            other: other.label.clone(),
            makespan_base_s: mb,
            makespan_other_s: mo,
            makespan_delta_s: mdelta,
            factors,
            counters,
            nodes,
            phase,
        }
    }

    /// True when the two runs are indistinguishable: same makespan, same
    /// critical path, same counters, same per-node busy time. Exact — two
    /// runs of the same scenario and seed must satisfy this.
    pub fn is_zero(&self) -> bool {
        self.makespan_delta_s == 0.0
            && self.factors.is_empty()
            && self.counters.is_empty()
            && self.nodes.is_empty()
    }

    /// The ranked human-readable "what changed" digest.
    pub fn digest(&self) -> String {
        let mut out = String::new();
        if self.makespan_base_s == 0.0 && self.makespan_other_s == 0.0 {
            let _ = writeln!(out, "run diff: {} vs {}", self.base, self.other);
        } else {
            let rel = if self.makespan_base_s != 0.0 {
                100.0 * self.makespan_delta_s / self.makespan_base_s
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "run diff: {} ({:.6}s) vs {} ({:.6}s): {:+.6}s ({:+.2}%)",
                self.base,
                self.makespan_base_s,
                self.other,
                self.makespan_other_s,
                self.makespan_delta_s,
                rel
            );
        }
        if self.is_zero() {
            let _ = writeln!(out, "  zero delta: the runs are indistinguishable");
            return out;
        }
        let _ = writeln!(out, "what changed (ranked):");
        if !self.factors.is_empty() {
            let _ = writeln!(out, "  critical path by kind:");
            for f in &self.factors {
                let _ = writeln!(
                    out,
                    "    {:<18} {:+.6}s  ({:.1}% of makespan delta)",
                    f.name, f.delta, f.share_pct
                );
            }
        }
        if let Some(p) = &self.phase {
            let _ = writeln!(
                out,
                "  phase window: {}..{} (peak {}), dominant column `{}`",
                p.from, p.until, p.peak, p.top_column
            );
        }
        if !self.nodes.is_empty() {
            let _ = write!(out, "  node divergence:");
            for d in self.nodes.iter().take(4) {
                let _ = write!(out, " n{} {:+.6}s busy;", d.node, d.delta_s);
            }
            if self.nodes.len() > 4 {
                let _ = write!(out, " (+{} more)", self.nodes.len() - 4);
            }
            out.push('\n');
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "  counters:");
            for c in self.counters.iter().take(8) {
                if c.share_pct.is_finite() {
                    let _ = writeln!(
                        out,
                        "    {:<24} {} -> {}  ({:+.1}%)",
                        c.name, c.base, c.other, c.share_pct
                    );
                } else {
                    let _ = writeln!(out, "    {:<24} {} -> {}  (new)", c.name, c.base, c.other);
                }
            }
            if self.counters.len() > 8 {
                let _ = writeln!(out, "    (+{} more)", self.counters.len() - 8);
            }
        }
        out
    }
}

/// Per-tick divergence between two probe series over their shared columns
/// and shared prefix of ticks; `None` when they never diverge (or share
/// nothing).
fn phase_window(a: &ProbeSeries, b: &ProbeSeries) -> Option<PhaseWindow> {
    let ticks = a.times.len().min(b.times.len());
    if ticks == 0 {
        return None;
    }
    let shared: Vec<(
        &crate::obs::probe::ProbeColumn,
        &crate::obs::probe::ProbeColumn,
    )> = a
        .columns
        .iter()
        .filter_map(|ca| b.column(&ca.name).map(|cb| (ca, cb)))
        .collect();
    if shared.is_empty() {
        return None;
    }
    let div: Vec<f64> = (0..ticks)
        .map(|i| {
            shared
                .iter()
                .map(|(ca, cb)| (ca.values[i] - cb.values[i]).abs())
                .sum()
        })
        .collect();
    let (peak_i, &peak_v) = div
        .iter()
        .enumerate()
        .max_by(|(_, x), (_, y)| x.total_cmp(y))?;
    if peak_v <= 0.0 {
        return None;
    }
    // Contiguous window around the peak where divergence stays above half
    // its maximum.
    let mut lo = peak_i;
    while lo > 0 && div[lo - 1] >= 0.5 * peak_v {
        lo -= 1;
    }
    let mut hi = peak_i;
    while hi + 1 < ticks && div[hi + 1] >= 0.5 * peak_v {
        hi += 1;
    }
    // The column contributing most inside the window.
    let top_column = shared
        .iter()
        .map(|(ca, cb)| {
            let s: f64 = (lo..=hi).map(|i| (ca.values[i] - cb.values[i]).abs()).sum();
            (ca.name.clone(), s)
        })
        .max_by(|(xn, x), (yn, y)| x.total_cmp(y).then_with(|| yn.cmp(xn)))
        .map(|(name, _)| name)?;
    Some(PhaseWindow {
        from: a.times[lo],
        until: a.times[hi],
        peak: a.times[peak_i],
        top_column,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    fn fp(label: &str, makespan: f64, kernel: f64, net: f64) -> RunFingerprint {
        let mut crit = BTreeMap::new();
        crit.insert("kernel".to_string(), s(kernel));
        crit.insert("network".to_string(), s(net));
        let mut counters = BTreeMap::new();
        counters.insert("steals_ok".to_string(), 10.0);
        RunFingerprint {
            label: label.to_string(),
            makespan: s(makespan),
            crit,
            node_busy: vec![s(makespan * 0.8), s(makespan * 0.7)],
            counters,
            probes: None,
        }
    }

    #[test]
    fn identical_runs_diff_to_zero() {
        let a = fp("a", 1.0, 0.7, 0.2);
        let d = RunDiff::compute(&a, &fp("b", 1.0, 0.7, 0.2));
        assert!(d.is_zero(), "{d:?}");
        assert!(d.digest().contains("zero delta"));
    }

    #[test]
    fn attribution_ranks_the_dominant_kind_first() {
        let base = fp("base", 1.0, 0.7, 0.2);
        let slow = fp("slow", 1.5, 1.15, 0.25);
        let d = RunDiff::compute(&base, &slow);
        assert!(!d.is_zero());
        assert_eq!(d.factors[0].name, "kernel");
        assert!(
            d.factors[0].share_pct > 50.0,
            "kernel should absorb the majority: {:?}",
            d.factors
        );
        let digest = d.digest();
        assert!(digest.contains("what changed"), "{digest}");
        assert!(digest.contains("kernel"), "{digest}");
    }

    #[test]
    fn counters_only_fingerprints_diff_by_relative_change() {
        let mut b = BTreeMap::new();
        b.insert("events_per_sec".to_string(), 100.0);
        b.insert("steals".to_string(), 10.0);
        let mut o = BTreeMap::new();
        o.insert("events_per_sec".to_string(), 60.0);
        o.insert("steals".to_string(), 11.0);
        let d = RunDiff::compute(
            &RunFingerprint::counters_only("base", b),
            &RunFingerprint::counters_only("now", o),
        );
        assert_eq!(d.counters[0].name, "events_per_sec");
        assert_eq!(d.counters[0].share_pct, -40.0);
        assert!(d.digest().contains("events_per_sec"));
    }

    #[test]
    fn phase_window_finds_the_divergence() {
        let iv = SimTime::from_millis(1);
        let mut a = ProbeSeries::new(iv);
        let mut b = ProbeSeries::new(iv);
        for i in 1..=10u64 {
            let t = SimTime::from_millis(i);
            let busy_a = 4.0;
            // The runs disagree only in ticks 4..=6, worst at 5.
            let busy_b = match i {
                4 | 6 => 2.0,
                5 => 0.0,
                _ => 4.0,
            };
            a.sample(t, &[("busy".to_string(), busy_a)]);
            b.sample(t, &[("busy".to_string(), busy_b)]);
        }
        let mut base = fp("a", 1.0, 0.7, 0.2);
        let mut other = fp("b", 1.1, 0.8, 0.2);
        base.probes = Some(a);
        other.probes = Some(b);
        let d = RunDiff::compute(&base, &other);
        assert!(d.digest().contains("phase window"));
        let p = d.phase.expect("divergence should be found");
        assert_eq!(p.peak, SimTime::from_millis(5));
        assert_eq!(p.from, SimTime::from_millis(4));
        assert_eq!(p.until, SimTime::from_millis(6));
        assert_eq!(p.top_column, "busy");
    }

    #[test]
    fn serde_round_trips() {
        let d = RunDiff::compute(&fp("a", 1.0, 0.7, 0.2), &fp("b", 1.5, 1.15, 0.25));
        let json = serde_json::to_string(&d).unwrap();
        let back: RunDiff = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }
}
