//! Host self-profiler: where does the *simulator's* wall time go?
//!
//! Every other module in `obs` observes the simulated cluster; this one
//! observes the simulator itself. BENCH_sim.json records opaque end-to-end
//! walls — "fig6 takes 3.1s" — but not whether the time went to event
//! dispatch, the MCPL VM, steal machinery, or export I/O. The profiler
//! answers that with a calling-context tree (CCT) of RAII scoped timers:
//!
//! - [`scope`] pushes a frame on a **thread-local** stack and starts a
//!   monotonic clock ([`std::time::Instant`]); dropping the returned
//!   [`Scope`] pops the frame and charges the elapsed host nanoseconds to
//!   the calling context (the path of open scopes), aggregating repeat
//!   visits into one node per `(path, name)`.
//! - When profiling is disabled (the default), [`scope`] is one relaxed
//!   atomic load and a branch — cheap enough to leave in the DES dispatch
//!   loop — and with the `prof-off` cargo feature the calls compile away
//!   entirely.
//! - Worker threads each build their own tree; [`take_local`] drains a
//!   thread's tree and [`absorb`] merges it into a process-wide
//!   accumulator. The sweep executor absorbs per-point trees **in declared
//!   point order**, and [`take`] name-sorts every sibling list, so the
//!   aggregated tree is structurally identical at any `--jobs` width (only
//!   the wall-time values vary between hosts and runs).
//!
//! The profiler is *observer-pure* by construction: it reads host clocks
//! and touches only its own thread-local state, never [`crate::SimTime`]
//! or any simulated artifact — runs with profiling on and off produce
//! byte-identical reports (proven by `tests/self_profile.rs` in the bench
//! crate).
//!
//! Exports: [`ProfTree::collapsed`] (the `frame;frame;frame <count>`
//! collapsed-stack format consumed by `inferno` and `flamegraph.pl`),
//! [`ProfTree::digest`] (a text top-N table), and plain serde for the
//! JSON report (the bench layer wraps it in a provenance envelope).

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
#[cfg(not(feature = "prof-off"))]
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

#[cfg(not(feature = "prof-off"))]
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Process-wide accumulator of absorbed worker trees (see [`absorb`]).
static ABSORBED: Mutex<Option<ProfTree>> = Mutex::new(None);

/// When profiling was last enabled — the denominator of the attribution
/// share (`attributed_ns / wall_ns`) the JSON export reports.
static STARTED: Mutex<Option<Instant>> = Mutex::new(None);

/// Turn profiling on or off process-wide. Enabling (re)stamps the wall
/// clock [`wall_ns`] measures from. Scopes opened while enabled charge
/// their time even if profiling is disabled before they close.
/// A no-op under the `prof-off` feature.
pub fn set_enabled(on: bool) {
    #[cfg(feature = "prof-off")]
    {
        let _ = on;
    }
    #[cfg(not(feature = "prof-off"))]
    {
        if on {
            *STARTED.lock().unwrap() = Some(Instant::now());
        }
        ENABLED.store(on, Ordering::Relaxed);
    }
}

/// Host wall nanoseconds since profiling was last enabled; 0 when it never
/// was. The single-threaded upper bound on what the tree can attribute.
pub fn wall_ns() -> u64 {
    STARTED
        .lock()
        .unwrap()
        .map(|t0| t0.elapsed().as_nanos() as u64)
        .unwrap_or(0)
}

/// Is profiling enabled? One relaxed load; with the `prof-off` feature
/// this is a compile-time `false` and every scope folds to nothing.
#[inline(always)]
pub fn enabled() -> bool {
    #[cfg(feature = "prof-off")]
    {
        false
    }
    #[cfg(not(feature = "prof-off"))]
    {
        ENABLED.load(Ordering::Relaxed)
    }
}

/// One CCT node in the thread-local arena. Children are looked up by
/// linear scan — context trees are shallow and narrow (tens of distinct
/// frames), so a scan beats hashing.
struct Frame {
    name: &'static str,
    total_ns: u64,
    count: u64,
    children: Vec<usize>,
}

/// Thread-local collector: an arena of frames plus the stack of open
/// scopes. `frames[0]` is the synthetic root; its children are the
/// top-level scopes of this thread.
struct Collector {
    frames: Vec<Frame>,
    stack: Vec<usize>,
}

impl Collector {
    fn new() -> Collector {
        Collector {
            frames: vec![Frame {
                name: "",
                total_ns: 0,
                count: 0,
                children: Vec::new(),
            }],
            stack: Vec::new(),
        }
    }

    fn enter(&mut self, name: &'static str) {
        let parent = self.stack.last().copied().unwrap_or(0);
        let found = self.frames[parent]
            .children
            .iter()
            .copied()
            .find(|&c| std::ptr::eq(self.frames[c].name, name) || self.frames[c].name == name);
        let idx = match found {
            Some(i) => i,
            None => {
                let i = self.frames.len();
                self.frames.push(Frame {
                    name,
                    total_ns: 0,
                    count: 0,
                    children: Vec::new(),
                });
                self.frames[parent].children.push(i);
                i
            }
        };
        self.stack.push(idx);
    }

    fn exit(&mut self, elapsed_ns: u64) {
        if let Some(idx) = self.stack.pop() {
            let f = &mut self.frames[idx];
            f.total_ns += elapsed_ns;
            f.count += 1;
        }
    }

    fn to_node(&self, idx: usize) -> ProfNode {
        let f = &self.frames[idx];
        ProfNode {
            name: f.name.to_string(),
            count: f.count,
            total_ns: f.total_ns,
            children: f.children.iter().map(|&c| self.to_node(c)).collect(),
        }
    }

    /// Drain completed frames into an owned tree and reset. Frames still
    /// open on the stack keep only the time charged by finished visits.
    fn take(&mut self) -> ProfTree {
        debug_assert!(
            self.stack.is_empty(),
            "prof::take_local with open scopes on this thread"
        );
        let roots = self.frames[0]
            .children
            .clone()
            .into_iter()
            .map(|c| self.to_node(c))
            .collect();
        *self = Collector::new();
        ProfTree { roots }
    }
}

thread_local! {
    static COLLECTOR: RefCell<Collector> = RefCell::new(Collector::new());
}

/// RAII scope guard: charges the elapsed host time to the calling context
/// when dropped. Inert (holds no clock) when profiling is disabled.
pub struct Scope {
    start: Option<Instant>,
}

/// Open a profiling scope named `name`. Frame names are `&'static str` so
/// the hot path never allocates; use stable, subsystem-style names
/// (`"event::steal"`, `"mcl::execute"`) — the selfbench share breakdown
/// aggregates self-time by these names.
#[inline]
pub fn scope(name: &'static str) -> Scope {
    if !enabled() {
        return Scope { start: None };
    }
    COLLECTOR.with(|c| c.borrow_mut().enter(name));
    Scope {
        start: Some(Instant::now()),
    }
}

impl Drop for Scope {
    #[inline]
    fn drop(&mut self) {
        if let Some(t0) = self.start {
            let elapsed = t0.elapsed().as_nanos() as u64;
            COLLECTOR.with(|c| c.borrow_mut().exit(elapsed));
        }
    }
}

/// One node of an owned, serializable context tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfNode {
    pub name: String,
    /// Completed visits to this calling context.
    pub count: u64,
    /// Inclusive host wall time (nanoseconds) across all visits.
    pub total_ns: u64,
    pub children: Vec<ProfNode>,
}

impl ProfNode {
    /// Exclusive time: inclusive minus children, clamped at zero (clock
    /// granularity can make a child appear to exceed its parent).
    pub fn self_ns(&self) -> u64 {
        let kids: u64 = self.children.iter().map(|c| c.total_ns).sum();
        self.total_ns.saturating_sub(kids)
    }

    fn merge_from(&mut self, other: &ProfNode) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        merge_children(&mut self.children, &other.children);
    }

    fn sort_rec(&mut self) {
        self.children.sort_by(|a, b| a.name.cmp(&b.name));
        for c in &mut self.children {
            c.sort_rec();
        }
    }
}

/// Merge `other` into `into`, matching nodes by name; unmatched nodes are
/// appended in `other`'s order (first-seen order overall).
fn merge_children(into: &mut Vec<ProfNode>, other: &[ProfNode]) {
    for o in other {
        match into.iter_mut().find(|n| n.name == o.name) {
            Some(n) => n.merge_from(o),
            None => into.push(o.clone()),
        }
    }
}

/// A calling-context tree: the forest of top-level scopes of one thread,
/// or the merge of many threads' forests.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProfTree {
    pub roots: Vec<ProfNode>,
}

impl ProfTree {
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Total attributed wall time: the sum of root inclusive times. With
    /// parallel workers this can exceed elapsed wall (it sums per-thread
    /// time, like CPU time does).
    pub fn total_ns(&self) -> u64 {
        self.roots.iter().map(|r| r.total_ns).sum()
    }

    /// Merge another tree into this one (counts and times add; nodes match
    /// by name per level).
    pub fn merge(&mut self, other: &ProfTree) {
        merge_children(&mut self.roots, &other.roots);
    }

    /// Name-sort every sibling list, recursively. Applied by [`take`] so
    /// exported trees are structurally identical regardless of the
    /// interleaving that built them.
    pub fn sort(&mut self) {
        self.roots.sort_by(|a, b| a.name.cmp(&b.name));
        for r in &mut self.roots {
            r.sort_rec();
        }
    }

    /// Exclusive time aggregated by frame name — the per-subsystem wall
    /// shares. Sorted by share descending, name ascending on ties; shares
    /// sum to 1.0 (of [`ProfTree::total_ns`]).
    pub fn subsystem_shares(&self) -> Vec<(String, f64)> {
        let mut by_name: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
        fn walk<'a>(n: &'a ProfNode, acc: &mut std::collections::BTreeMap<&'a str, u64>) {
            *acc.entry(&n.name).or_insert(0) += n.self_ns();
            for c in &n.children {
                walk(c, acc);
            }
        }
        for r in &self.roots {
            walk(r, &mut by_name);
        }
        let total = self.total_ns().max(1) as f64;
        let mut out: Vec<(String, f64)> = by_name
            .into_iter()
            .map(|(k, v)| (k.to_string(), v as f64 / total))
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Collapsed-stack export (`inferno` / `flamegraph.pl` input): one
    /// line per context, `program;frame;frame <self_ns>`. Every line
    /// starts with the `program` root frame; counts are the context's
    /// exclusive nanoseconds, clamped to ≥ 1 so visited-but-instant
    /// leaves stay on the graph.
    pub fn collapsed(&self, program: &str) -> String {
        let mut out = String::new();
        fn walk(n: &ProfNode, path: &mut String, out: &mut String) {
            let len = path.len();
            path.push(';');
            path.push_str(&n.name);
            let self_ns = n.self_ns();
            if self_ns > 0 || n.children.is_empty() {
                out.push_str(path);
                out.push(' ');
                out.push_str(&self_ns.max(1).to_string());
                out.push('\n');
            }
            for c in &n.children {
                walk(c, path, out);
            }
            path.truncate(len);
        }
        let mut path = String::from(program);
        for r in &self.roots {
            walk(r, &mut path, &mut out);
        }
        out
    }

    /// Text top-N digest: the heaviest frame names by exclusive time,
    /// with share, milliseconds and visit counts.
    pub fn digest(&self, n: usize) -> String {
        let total = self.total_ns();
        let mut counts: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
        fn visits<'a>(node: &'a ProfNode, acc: &mut std::collections::BTreeMap<&'a str, u64>) {
            *acc.entry(&node.name).or_insert(0) += node.count;
            for c in &node.children {
                visits(c, acc);
            }
        }
        for r in &self.roots {
            visits(r, &mut counts);
        }
        let shares = self.subsystem_shares();
        let mut s = format!(
            "self-profile: {:.1}ms attributed, top {} frames by self time\n",
            total as f64 / 1e6,
            n.min(shares.len())
        );
        for (name, share) in shares.iter().take(n) {
            let self_ms = share * total as f64 / 1e6;
            let visits = counts.get(name.as_str()).copied().unwrap_or(0);
            s.push_str(&format!(
                "  {:>5.1}%  {:>10.2}ms  x{:<9} {}\n",
                share * 100.0,
                self_ms,
                visits,
                name
            ));
        }
        s
    }
}

/// Drain the calling thread's tree (and reset its collector). Call with
/// no scopes open on this thread.
pub fn take_local() -> ProfTree {
    COLLECTOR.with(|c| c.borrow_mut().take())
}

/// Merge a worker's tree into the process-wide accumulator. The sweep
/// executor calls this once per point, in declared point order, after
/// reassembling results — the merge order (and thus the aggregate) is
/// independent of which worker ran which point when.
pub fn absorb(tree: ProfTree) {
    if tree.is_empty() {
        return;
    }
    let mut g = ABSORBED.lock().unwrap();
    match g.as_mut() {
        Some(t) => t.merge(&tree),
        None => *g = Some(tree),
    }
}

/// Drain everything: the calling thread's local tree merged with all
/// absorbed worker trees, name-sorted for structural stability. This is
/// what `--self-profile` writers export.
pub fn take() -> ProfTree {
    let mut tree = take_local();
    if let Some(absorbed) = ABSORBED.lock().unwrap().take() {
        tree.merge(&absorbed);
    }
    tree.sort();
    tree
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Profiler unit tests share the process-wide enable flag; serialize
    /// them so parallel test threads don't observe each other's frames.
    static LOCK: Mutex<()> = Mutex::new(());

    fn with_profiler<R>(f: impl FnOnce() -> R) -> R {
        let _guard = LOCK.lock().unwrap();
        let _ = take(); // drop stale state from other tests
        set_enabled(true);
        let r = f();
        set_enabled(false);
        r
    }

    #[test]
    fn disabled_scopes_record_nothing() {
        let _guard = LOCK.lock().unwrap();
        let _ = take();
        set_enabled(false);
        {
            let _a = scope("a");
            let _b = scope("b");
        }
        assert!(take().is_empty());
    }

    #[test]
    fn scopes_build_a_calling_context_tree() {
        let tree = with_profiler(|| {
            for _ in 0..3 {
                let _a = scope("a");
                {
                    let _b = scope("b");
                }
                {
                    let _b = scope("b");
                }
            }
            {
                let _c = scope("c");
                let _b = scope("b");
            }
            take()
        });
        // Same name under different parents = different contexts.
        assert_eq!(tree.roots.len(), 2);
        let a = tree.roots.iter().find(|r| r.name == "a").unwrap();
        assert_eq!(a.count, 3);
        assert_eq!(a.children.len(), 1, "repeat visits aggregate by name");
        assert_eq!(a.children[0].name, "b");
        assert_eq!(a.children[0].count, 6);
        let c = tree.roots.iter().find(|r| r.name == "c").unwrap();
        assert_eq!(c.children[0].name, "b");
        assert_eq!(c.children[0].count, 1);
        assert!(a.total_ns >= a.children[0].total_ns);
    }

    #[test]
    fn merge_adds_counts_and_appends_new_contexts() {
        let node = |name: &str, count, total_ns, children| ProfNode {
            name: name.into(),
            count,
            total_ns,
            children,
        };
        let mut a = ProfTree {
            roots: vec![node("x", 1, 100, vec![node("y", 2, 40, vec![])])],
        };
        let b = ProfTree {
            roots: vec![
                node("x", 1, 60, vec![node("z", 1, 10, vec![])]),
                node("w", 5, 7, vec![]),
            ],
        };
        a.merge(&b);
        assert_eq!(a.roots.len(), 2);
        let x = &a.roots[0];
        assert_eq!((x.count, x.total_ns), (2, 160));
        assert_eq!(x.children.len(), 2, "unmatched child appended");
        assert_eq!(a.total_ns(), 167);
    }

    #[test]
    fn absorb_order_does_not_change_the_sorted_aggregate() {
        let leaf = |name: &str, ns| ProfNode {
            name: name.into(),
            count: 1,
            total_ns: ns,
            children: vec![],
        };
        let t1 = ProfTree {
            roots: vec![leaf("alpha", 5)],
        };
        let t2 = ProfTree {
            roots: vec![leaf("beta", 7)],
        };
        let merged = |order: [&ProfTree; 2]| {
            let mut m = ProfTree::default();
            for t in order {
                m.merge(t);
            }
            m.sort();
            m
        };
        assert_eq!(merged([&t1, &t2]), merged([&t2, &t1]));
    }

    #[test]
    fn collapsed_lines_are_well_formed_and_share_the_root_frame() {
        let tree = with_profiler(|| {
            {
                let _a = scope("dispatch");
                let _b = scope("kernel");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            {
                let _c = scope("export");
            }
            take()
        });
        let collapsed = tree.collapsed("cashmere");
        assert!(!collapsed.is_empty());
        for line in collapsed.lines() {
            let (stack, count) = line.rsplit_once(' ').expect("frame list + count");
            assert!(count.parse::<u64>().unwrap() > 0, "{line}");
            let frames: Vec<&str> = stack.split(';').collect();
            assert_eq!(frames[0], "cashmere", "consistent root frame: {line}");
            assert!(frames.iter().all(|f| !f.is_empty()), "{line}");
        }
        assert!(collapsed.contains("cashmere;dispatch;kernel "));
    }

    #[test]
    fn shares_sum_to_one_and_digest_names_heavy_frames() {
        let tree = with_profiler(|| {
            {
                let _a = scope("hot");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            {
                let _b = scope("cold");
            }
            take()
        });
        let shares = tree.subsystem_shares();
        let sum: f64 = shares.iter().map(|(_, s)| s).sum();
        assert!((sum - 1.0).abs() < 1e-9, "shares sum to 1, got {sum}");
        assert_eq!(shares[0].0, "hot", "heaviest frame ranks first");
        let digest = tree.digest(5);
        assert!(digest.contains("hot"), "{digest}");
        assert!(digest.contains("attributed"), "{digest}");
    }

    #[test]
    fn json_round_trips() {
        let tree = ProfTree {
            roots: vec![ProfNode {
                name: "a".into(),
                count: 2,
                total_ns: 99,
                children: vec![ProfNode {
                    name: "b".into(),
                    count: 1,
                    total_ns: 40,
                    children: vec![],
                }],
            }],
        };
        let json = serde_json::to_string(&tree).unwrap();
        let back: ProfTree = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tree);
    }
}
