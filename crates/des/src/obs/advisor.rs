//! What-if performance advisor: perturbation model and ranked report.
//!
//! The paper's workflow is stepwise refinement guided by performance
//! feedback (Secs. II-B, V): the programmer needs to know *what to optimize
//! next*. Critical-path attribution alone cannot answer that on this system
//! — transfers overlap kernels and the balancer re-routes work when a
//! device speeds up, so the makespan is not a sum of segment times. The
//! advisor therefore answers counterfactuals by *experiment*, Coz-style:
//! re-execute the whole deterministic simulation with exactly one factor
//! virtually scaled, and report the measured makespan delta.
//!
//! This module owns the experiment vocabulary — [`Perturbation`] specs like
//! `dev:k20:2x`, candidate enumeration from a baseline trace, and the
//! ranked [`WhatIfReport`]. Applying a perturbation to a live simulation
//! and re-running it is the bench layer's job (`cashmere-bench`'s `advisor`
//! bin), which fans the re-executions out over the deterministic sweep
//! executor so reports are byte-identical at any `--jobs`.

use crate::obs::critical::CriticalPath;
use crate::time::SimTime;
use crate::trace::Trace;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// What a perturbation scales.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PerturbTarget {
    /// A device's compute rate: kernel times divide by the factor.
    DeviceSpeed,
    /// A device's PCIe link: bandwidth multiplies, latency divides.
    PcieLink,
    /// The cluster interconnect: bandwidth multiplies, latency divides.
    Network,
    /// Steal retry/timeout pacing: intervals divide by the factor.
    StealRetry,
    /// The balancer's static relative-speed table entry only — placement
    /// changes, actual device speed does not (a miscalibration probe).
    BalancerTable,
}

impl PerturbTarget {
    /// Spec-string prefix (`dev:`, `pcie:`, …).
    pub fn prefix(self) -> &'static str {
        match self {
            PerturbTarget::DeviceSpeed => "dev",
            PerturbTarget::PcieLink => "pcie",
            PerturbTarget::Network => "net",
            PerturbTarget::StealRetry => "steal",
            PerturbTarget::BalancerTable => "table",
        }
    }

    fn parse(s: &str) -> Option<PerturbTarget> {
        match s {
            "dev" => Some(PerturbTarget::DeviceSpeed),
            "pcie" => Some(PerturbTarget::PcieLink),
            "net" => Some(PerturbTarget::Network),
            "steal" => Some(PerturbTarget::StealRetry),
            "table" => Some(PerturbTarget::BalancerTable),
            _ => None,
        }
    }

    /// Does this target select per-device (vs. cluster-wide)?
    pub fn is_per_device(self) -> bool {
        matches!(
            self,
            PerturbTarget::DeviceSpeed | PerturbTarget::PcieLink | PerturbTarget::BalancerTable
        )
    }
}

/// One virtual-speedup experiment: scale `target` (restricted to devices
/// matching `selector`) by `factor` and re-execute.
///
/// Spec syntax: `<target>:<selector>:<factor>` — `dev:k20:2x`,
/// `pcie:*:0.5x`, `table:xeon_phi:4x`. Cluster-wide targets may omit the
/// selector (`net:2x` ≡ `net:*:2x`). A factor of `2` means "twice as
/// fast"; `0.5` means "half as fast". The trailing `x` is optional.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Perturbation {
    pub target: PerturbTarget,
    /// Device level name, or `*` for every device. Ignored (and kept as
    /// `*`) for cluster-wide targets.
    pub selector: String,
    /// Virtual speed factor; must be finite and positive.
    pub factor: f64,
}

impl Perturbation {
    /// Parse a spec string (see the type docs for the syntax).
    pub fn parse(spec: &str) -> Result<Perturbation, String> {
        let parts: Vec<&str> = spec.split(':').collect();
        let (target_s, selector, factor_s) = match parts.as_slice() {
            [t, f] => (*t, "*", *f),
            [t, s, f] => (*t, *s, *f),
            _ => {
                return Err(format!(
                    "bad perturbation `{spec}` (want <target>:<selector>:<factor>, e.g. dev:*:2x)"
                ))
            }
        };
        let target = PerturbTarget::parse(target_s).ok_or_else(|| {
            format!("unknown perturbation target `{target_s}` (dev|pcie|net|steal|table)")
        })?;
        let factor: f64 = factor_s
            .strip_suffix('x')
            .unwrap_or(factor_s)
            .parse()
            .map_err(|_| format!("bad factor `{factor_s}` in `{spec}` (e.g. 2x, 0.5)"))?;
        if !(factor.is_finite() && factor > 0.0) {
            return Err(format!("factor in `{spec}` must be finite and > 0"));
        }
        if selector.is_empty() {
            return Err(format!("empty selector in `{spec}`"));
        }
        Ok(Perturbation {
            target,
            selector: if target.is_per_device() {
                selector.to_string()
            } else {
                "*".to_string()
            },
            factor,
        })
    }

    /// The same experiment at a different factor.
    pub fn with_factor(&self, factor: f64) -> Perturbation {
        Perturbation {
            factor,
            ..self.clone()
        }
    }

    /// Canonical spec string (`dev:k20:2x`); parses back to `self`.
    pub fn spec(&self) -> String {
        format!(
            "{}:{}:{}x",
            self.target.prefix(),
            self.selector,
            self.factor
        )
    }

    /// Does this perturbation select the device level named `device`?
    pub fn matches_device(&self, device: &str) -> bool {
        self.selector == "*" || self.selector == device
    }
}

/// A candidate experiment enumerated from a baseline run, annotated with
/// the share of the critical path its span kind occupies (the extrapolation
/// a re-execution will confirm or refute).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Candidate {
    pub perturbation: Perturbation,
    /// Percent of the baseline critical path spent in the span kind this
    /// perturbation accelerates.
    pub cp_share_pct: f64,
}

/// Percent of the critical path attributable to the span kinds `target`
/// accelerates (0 when the path is empty).
pub fn critical_share_pct(cp: &CriticalPath, target: PerturbTarget) -> f64 {
    if cp.total.as_nanos() == 0 {
        return 0.0;
    }
    let kinds: &[&str] = match target {
        PerturbTarget::DeviceSpeed | PerturbTarget::BalancerTable => &["kernel"],
        PerturbTarget::PcieLink => &["copy_to_device", "copy_from_device"],
        PerturbTarget::Network => &["network"],
        PerturbTarget::StealRetry => &["steal"],
    };
    let ns: u64 = kinds
        .iter()
        .filter_map(|k| cp.by_kind.get(*k))
        .map(|t| t.as_nanos())
        .sum();
    100.0 * ns as f64 / cp.total.as_nanos() as f64
}

/// Enumerate perturbation candidates from a baseline trace: one device and
/// one PCIe candidate per device kind that recorded spans, balancer-table
/// candidates when the cluster mixes device kinds, and network / steal
/// candidates when those span kinds occurred. `device_kinds` is the cluster
/// spec's distinct device inventory (lane names alone cannot distinguish
/// `gtx480` from `gtx4800`). Order is deterministic.
pub fn enumerate_candidates(trace: &Trace, device_kinds: &[String]) -> Vec<Candidate> {
    let cp = CriticalPath::compute(trace);
    let mut kinds: Vec<&String> = device_kinds.iter().collect();
    kinds.sort();
    kinds.dedup();
    // Which device kinds actually recorded work, and which cluster-wide
    // span kinds occurred.
    let mut lane_has_spans = vec![false; trace.lane_count()];
    let (mut saw_net, mut saw_steal) = (false, false);
    for s in trace.spans() {
        lane_has_spans[s.lane.0] = true;
        match s.kind {
            crate::trace::SpanKind::Network => saw_net = true,
            crate::trace::SpanKind::Steal => saw_steal = true,
            _ => {}
        }
    }
    let kind_active = |kind: &str| {
        let infix = format!(".{kind}");
        trace.lane_names().iter().enumerate().any(|(i, name)| {
            lane_has_spans[i]
                && name.find(&infix).is_some_and(|at| {
                    // The infix must be followed by the device index
                    // digits (`n0.gtx4800.exec` matches `gtx480` at the
                    // device position, not by accident mid-name).
                    name[at + infix.len()..].starts_with(|c: char| c.is_ascii_digit())
                })
        })
    };
    let active: Vec<&String> = kinds.into_iter().filter(|k| kind_active(k)).collect();

    let mut out = Vec::new();
    let mut push = |target: PerturbTarget, selector: &str| {
        out.push(Candidate {
            perturbation: Perturbation {
                target,
                selector: selector.to_string(),
                factor: 2.0,
            },
            cp_share_pct: critical_share_pct(&cp, target),
        });
    };
    for k in &active {
        push(PerturbTarget::DeviceSpeed, k);
    }
    for k in &active {
        push(PerturbTarget::PcieLink, k);
    }
    if active.len() > 1 {
        // Table entries only matter relative to other devices.
        for k in &active {
            push(PerturbTarget::BalancerTable, k);
        }
    }
    if saw_net {
        push(PerturbTarget::Network, "*");
    }
    if saw_steal {
        push(PerturbTarget::StealRetry, "*");
    }
    out
}

/// One measured what-if experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WhatIfRow {
    /// Canonical perturbation spec (`dev:k20:2x`).
    pub spec: String,
    pub target: PerturbTarget,
    pub selector: String,
    pub factor: f64,
    /// Critical-path share of the accelerated span kind in the *baseline*
    /// (what pure extrapolation would credit).
    pub cp_share_pct: f64,
    /// Measured makespan of the perturbed re-execution, ns.
    pub makespan_ns: u64,
    /// `makespan - baseline`: negative means the perturbation helped.
    pub delta_ns: i64,
    /// `baseline / makespan`.
    pub speedup: f64,
}

/// Ranked what-if table over one baseline run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WhatIfReport {
    pub workload: String,
    pub seed: u64,
    /// Baseline makespan, ns.
    pub baseline_ns: u64,
    /// Rows sorted by ascending `delta_ns` (best improvement first) after
    /// [`WhatIfReport::rank`]; ties break on the spec string.
    pub rows: Vec<WhatIfRow>,
}

impl WhatIfReport {
    pub fn new(workload: impl Into<String>, seed: u64, baseline_ns: u64) -> WhatIfReport {
        WhatIfReport {
            workload: workload.into(),
            seed,
            baseline_ns,
            rows: Vec::new(),
        }
    }

    /// Record one measured experiment.
    pub fn push(&mut self, p: &Perturbation, cp_share_pct: f64, makespan_ns: u64) {
        self.rows.push(WhatIfRow {
            spec: p.spec(),
            target: p.target,
            selector: p.selector.clone(),
            factor: p.factor,
            cp_share_pct,
            makespan_ns,
            delta_ns: makespan_ns as i64 - self.baseline_ns as i64,
            speedup: self.baseline_ns as f64 / makespan_ns as f64,
        });
    }

    /// Sort best-first (most negative delta), deterministically.
    pub fn rank(&mut self) {
        self.rows
            .sort_by(|a, b| a.delta_ns.cmp(&b.delta_ns).then(a.spec.cmp(&b.spec)));
    }

    /// The ranked "optimize this next" table.
    pub fn to_text(&self) -> String {
        let secs = |ns: u64| ns as f64 / 1e9;
        let mut out = format!(
            "what-if ranking: {} (seed {}), baseline {:.4}s\n",
            self.workload,
            self.seed,
            secs(self.baseline_ns)
        );
        let spec_w = self
            .rows
            .iter()
            .map(|r| r.spec.len())
            .max()
            .unwrap_or(4)
            .max(12);
        let _ = writeln!(
            out,
            "  {:>4}  {:<spec_w$}  {:>6}  {:>10}  {:>10}  {:>8}",
            "rank", "perturbation", "cp%", "makespan", "delta", "speedup"
        );
        for (i, r) in self.rows.iter().enumerate() {
            let _ = writeln!(
                out,
                "  {:>4}  {:<spec_w$}  {:>6.1}  {:>9.4}s  {:>+9.4}s  {:>7.3}x",
                i + 1,
                r.spec,
                r.cp_share_pct,
                secs(r.makespan_ns),
                r.delta_ns as f64 / 1e9,
                r.speedup
            );
        }
        out
    }

    /// Baseline makespan as virtual time.
    pub fn baseline(&self) -> SimTime {
        SimTime::from_nanos(self.baseline_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SpanKind;

    #[test]
    fn perturbation_specs_round_trip() {
        for spec in ["dev:k20:2x", "pcie:*:0.5x", "table:xeon_phi:4x", "net:*:2x"] {
            let p = Perturbation::parse(spec).unwrap();
            assert_eq!(p.spec(), spec, "{spec}");
            assert_eq!(Perturbation::parse(&p.spec()).unwrap(), p);
        }
        // Short forms and optional `x`.
        let p = Perturbation::parse("net:2").unwrap();
        assert_eq!(p.target, PerturbTarget::Network);
        assert_eq!(p.selector, "*");
        assert_eq!(p.factor, 2.0);
        let p = Perturbation::parse("steal:0.5").unwrap();
        assert_eq!(p.target, PerturbTarget::StealRetry);
        assert_eq!(p.factor, 0.5);
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(Perturbation::parse("dev").is_err());
        assert!(Perturbation::parse("gpu:*:2x").is_err());
        assert!(Perturbation::parse("dev:*:fast").is_err());
        assert!(Perturbation::parse("dev:*:0").is_err());
        assert!(Perturbation::parse("dev:*:-2").is_err());
        assert!(Perturbation::parse("dev::2x").is_err());
        assert!(Perturbation::parse("a:b:c:d").is_err());
    }

    #[test]
    fn matches_device_honors_wildcard() {
        let p = Perturbation::parse("dev:*:2x").unwrap();
        assert!(p.matches_device("k20") && p.matches_device("gtx480"));
        let p = Perturbation::parse("dev:k20:2x").unwrap();
        assert!(p.matches_device("k20"));
        assert!(!p.matches_device("gtx480"));
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn demo_trace() -> Trace {
        let mut tr = Trace::new();
        tr.set_enabled(true);
        let cpu = tr.add_lane("node0.cpu");
        let net = tr.add_lane("node0.net");
        let h2d = tr.add_lane("n0.gtx4800.h2d");
        let exec = tr.add_lane("n0.gtx4800.exec");
        let _unused = tr.add_lane("n0.k200.exec"); // registered, no spans
        let root = tr.record(cpu, SpanKind::CpuTask, "divide", t(0), t(10));
        let steal = tr.record_child(net, SpanKind::Steal, "steal", t(10), t(20), root);
        let copy = tr.record_child(h2d, SpanKind::CopyToDevice, "k", t(20), t(40), steal);
        tr.record_child(exec, SpanKind::Kernel, "k", t(40), t(100), copy);
        tr
    }

    #[test]
    fn candidates_cover_active_devices_only() {
        let tr = demo_trace();
        let kinds = vec!["gtx480".to_string(), "k20".to_string()];
        let cands = enumerate_candidates(&tr, &kinds);
        let specs: Vec<String> = cands.iter().map(|c| c.perturbation.spec()).collect();
        // k20 registered a lane but never ran: no candidates for it, and
        // with one active kind there are no table candidates either.
        assert_eq!(
            specs,
            vec!["dev:gtx480:2x", "pcie:gtx480:2x", "steal:*:2x"],
            "{specs:?}"
        );
        // The kernel dominates this critical path.
        let dev = &cands[0];
        assert!(dev.cp_share_pct > 50.0, "{}", dev.cp_share_pct);
    }

    #[test]
    fn report_ranks_best_delta_first() {
        let mut rep = WhatIfReport::new("demo", 42, 1_000_000);
        let a = Perturbation::parse("dev:a:2x").unwrap();
        let b = Perturbation::parse("dev:b:2x").unwrap();
        let c = Perturbation::parse("net:*:2x").unwrap();
        rep.push(&a, 50.0, 900_000);
        rep.push(&b, 10.0, 1_100_000);
        rep.push(&c, 5.0, 700_000);
        rep.rank();
        let specs: Vec<&str> = rep.rows.iter().map(|r| r.spec.as_str()).collect();
        assert_eq!(specs, vec!["net:*:2x", "dev:a:2x", "dev:b:2x"]);
        assert_eq!(rep.rows[0].delta_ns, -300_000);
        assert!((rep.rows[0].speedup - 1_000_000.0 / 700_000.0).abs() < 1e-9);
        let text = rep.to_text();
        assert!(text.contains("baseline 0.0010s"), "{text}");
        assert!(text.contains("net:*:2x"), "{text}");
    }
}
