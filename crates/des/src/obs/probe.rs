//! Flight recorder: deterministic periodic sampling of cluster state.
//!
//! The paper (and PR 2's observability layer) reads every run off
//! end-of-run aggregates; EngineCL-style continuous telemetry is what makes
//! heterogeneous load-balancing behavior legible *while it happens*. A
//! [`ProbeSeries`] is the columnar store behind that: the engine schedules a
//! probe event every `interval` of virtual time, each firing appends one row
//! of named gauge columns (busy cores, queue depth, steal rate, in-flight
//! bytes, placement mix, …), and the result exports as CSV, timestamped
//! OpenMetrics, or Chrome counter tracks.
//!
//! Determinism contract: sampling is read-only. A probe event consumes no
//! randomness, mutates no simulation state, and the engine cancels the
//! pending probe when the root job completes, so the virtual clock never
//! advances past the real finish. Two runs of the same scenario — with or
//! without probing, at any `--jobs` width — produce byte-identical reports,
//! and two probed runs produce byte-identical series.

use crate::obs::chrome::{push_json_str, push_ts};
use crate::obs::metrics::escape_label_value;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One named column of the series: a value per recorded tick.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeColumn {
    pub name: String,
    pub values: Vec<f64>,
}

/// A compact columnar time series sampled at a fixed virtual-time cadence.
///
/// Columns are created on first appearance (in sampler declaration order,
/// so the layout is deterministic) and zero-backfilled for ticks recorded
/// before they existed; columns absent from a sample are padded with zero.
/// In practice every sampler reports the same columns every tick, so both
/// paths are fallbacks, not the steady state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbeSeries {
    /// Sampling cadence (virtual time between ticks).
    pub interval: SimTime,
    /// Tick timestamps, strictly increasing multiples of `interval`.
    pub times: Vec<SimTime>,
    pub columns: Vec<ProbeColumn>,
}

impl ProbeSeries {
    pub fn new(interval: SimTime) -> ProbeSeries {
        ProbeSeries {
            interval,
            times: Vec::new(),
            columns: Vec::new(),
        }
    }

    /// Number of recorded ticks.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    pub fn column(&self, name: &str) -> Option<&ProbeColumn> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Record one tick at time `t` with the given `(name, value)` columns.
    pub fn sample(&mut self, t: SimTime, cols: &[(String, f64)]) {
        let tick = self.times.len();
        self.times.push(t);
        for (name, value) in cols {
            match self.columns.iter_mut().find(|c| &c.name == name) {
                Some(c) => {
                    // Zero-pad any ticks this column missed, then append.
                    c.values.resize(tick, 0.0);
                    c.values.push(*value);
                }
                None => {
                    let mut values = vec![0.0; tick];
                    values.push(*value);
                    self.columns.push(ProbeColumn {
                        name: name.clone(),
                        values,
                    });
                }
            }
        }
        // Columns absent from this sample read as zero for the tick.
        for c in &mut self.columns {
            c.values.resize(tick + 1, 0.0);
        }
    }

    /// CSV export: header `t_ns,<col>,…`, one row per tick. Values use
    /// Rust's shortest-roundtrip `f64` formatting — deterministic, and
    /// integral gauges print without a fraction.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_ns");
        for c in &self.columns {
            out.push(',');
            out.push_str(&c.name);
        }
        out.push('\n');
        for (i, t) in self.times.iter().enumerate() {
            let _ = write!(out, "{}", t.as_nanos());
            for c in &self.columns {
                let _ = write!(out, ",{}", c.values[i]);
            }
            out.push('\n');
        }
        out
    }

    /// Timestamped OpenMetrics text exposition: one `cashmere_probe` gauge
    /// family, each sample labeled with its (escaped) column name and
    /// carrying its virtual-time timestamp in seconds, `# EOF` terminated.
    pub fn to_openmetrics(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# TYPE cashmere_probe gauge");
        let _ = writeln!(
            out,
            "# HELP cashmere_probe Flight-recorder sample (virtual-time timestamps)."
        );
        for c in &self.columns {
            let label = escape_label_value(&c.name);
            for (i, t) in self.times.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "cashmere_probe{{column=\"{label}\"}} {} {:.9}",
                    c.values[i],
                    t.as_secs_f64()
                );
            }
        }
        out.push_str("# EOF\n");
        out
    }

    /// Chrome trace-event export: one counter track (`"ph":"C"`) per
    /// column, overlayable on the span trace in Perfetto. Byte-deterministic
    /// (same fixed-point timestamps as [`crate::Trace::to_chrome_json`]).
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for c in &self.columns {
            for (i, t) in self.times.iter().enumerate() {
                if first {
                    first = false;
                } else {
                    out.push(',');
                }
                out.push('\n');
                out.push_str("{\"ph\":\"C\",\"name\":");
                push_json_str(&mut out, &format!("probe.{}", c.name));
                out.push_str(",\"pid\":1,\"tid\":0,\"ts\":");
                push_ts(&mut out, *t);
                let _ = write!(out, ",\"args\":{{\"value\":{}}}}}", c.values[i]);
            }
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn series() -> ProbeSeries {
        let mut p = ProbeSeries::new(t(1000));
        p.sample(
            t(1000),
            &[("busy".to_string(), 3.0), ("queue".to_string(), 7.0)],
        );
        p.sample(
            t(2000),
            &[("busy".to_string(), 5.0), ("queue".to_string(), 2.0)],
        );
        p
    }

    #[test]
    fn columns_stay_aligned() {
        let mut p = series();
        // A column appearing late is zero-backfilled; one disappearing is
        // zero-padded.
        p.sample(
            t(3000),
            &[("busy".to_string(), 1.0), ("late".to_string(), 9.0)],
        );
        assert_eq!(p.len(), 3);
        for c in &p.columns {
            assert_eq!(c.values.len(), 3, "column {} misaligned", c.name);
        }
        assert_eq!(p.column("late").unwrap().values, vec![0.0, 0.0, 9.0]);
        assert_eq!(p.column("queue").unwrap().values, vec![7.0, 2.0, 0.0]);
    }

    #[test]
    fn csv_layout_and_determinism() {
        let p = series();
        let csv = p.to_csv();
        assert_eq!(
            csv, "t_ns,busy,queue\n1000,3,7\n2000,5,2\n",
            "header + one row per tick"
        );
        assert_eq!(csv, series().to_csv(), "byte-deterministic");
    }

    #[test]
    fn openmetrics_is_timestamped_escaped_and_terminated() {
        let mut p = ProbeSeries::new(t(1000));
        p.sample(t(1_000_000), &[("odd\"name\\x".to_string(), 1.5)]);
        let om = p.to_openmetrics();
        assert!(om.ends_with("# EOF\n"));
        assert!(om.contains("# TYPE cashmere_probe gauge"));
        assert!(
            om.contains("cashmere_probe{column=\"odd\\\"name\\\\x\"} 1.5 0.001000000"),
            "{om}"
        );
    }

    #[test]
    fn chrome_export_is_counter_tracks() {
        let json = series().to_chrome_json();
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"name\":\"probe.busy\""));
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"value\":3"));
        assert!(json.trim_end().ends_with("\"displayTimeUnit\":\"ms\"}"));
    }

    #[test]
    fn serde_round_trips() {
        let p = series();
        let json = serde_json::to_string(&p).unwrap();
        let back: ProbeSeries = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
