//! Observability layer: metrics registry, Chrome trace-event export, and
//! critical-path analysis over the causal span tree.
//!
//! The paper reads every result off a Gantt chart or a measured-time table;
//! this module makes that the default workflow for the simulator. The
//! [`crate::Trace`] span tree (ids + parent links, recorded by the Satin and
//! Cashmere layers) feeds three consumers:
//!
//! - [`metrics`]: counters, time-weighted gauges and log-scaled latency
//!   histograms, owned by the simulation ([`crate::Sim::metrics`]).
//! - [`chrome`]: `Trace::to_chrome_json()` export, openable in Perfetto or
//!   `chrome://tracing`, with lanes as tracks and flow arrows for the causal
//!   edges that cross lanes (steals, result transfers, PCIe copies).
//! - [`critical`]: the longest dependency chain from the root spawn to the
//!   final combine, attributed per [`crate::SpanKind`], so "makespan = X,
//!   critical path = 62% kernel / 23% PCIe / 15% steal" is how a run reads.
//! - [`timeline`]: per-lane occupancy step functions and busy fractions,
//!   exported as Chrome counter tracks and a text digest.
//! - [`advisor`]: the what-if vocabulary — perturbation specs
//!   (`dev:k20:2x`), candidate enumeration from a baseline trace, and the
//!   ranked virtual-speedup report the bench `advisor` bin fills by
//!   deterministic re-execution.
//! - [`probe`]: the flight recorder — a columnar time series filled by
//!   engine-scheduled periodic sampling (busy cores, queue depth, steal
//!   rate, in-flight bytes, placement mix), exported as CSV, timestamped
//!   OpenMetrics, or Chrome counter tracks.
//! - [`diff`]: the regression explainer — compares two run fingerprints
//!   (makespan, critical path, counters, probe series) and emits a ranked
//!   "what changed" attribution digest.
//! - [`prof`]: the host self-profiler — RAII scoped timers aggregating
//!   into a calling-context tree of *host* wall time (never simulated
//!   time), exported as collapsed stacks for flamegraphs, JSON, and a
//!   top-N digest. The one `obs` module that observes the simulator
//!   itself instead of the simulated cluster.

pub mod advisor;
pub mod chrome;
pub mod critical;
pub mod diff;
pub mod metrics;
pub mod probe;
pub mod prof;
pub mod timeline;

pub use advisor::{
    critical_share_pct, enumerate_candidates, Candidate, PerturbTarget, Perturbation, WhatIfReport,
    WhatIfRow,
};
pub use chrome::{ChromeArgs, ChromeEvent, ChromeTrace};
pub use critical::{CriticalPath, CriticalSegment};
pub use diff::{DiffFactor, NodeDivergence, PhaseWindow, RunDiff, RunFingerprint};
pub use metrics::{LatencyHistogram, MetricsRegistry};
pub use probe::{ProbeColumn, ProbeSeries};
pub use prof::{ProfNode, ProfTree};
pub use timeline::{LaneUsage, UtilizationTimelines};
