//! # cashmere-des — deterministic discrete-event simulation engine
//!
//! This crate is the timing substrate for the cashmere-rs reproduction of
//! *Cashmere: Heterogeneous Many-Core Computing* (Hijma et al., IPDPS 2015).
//! The paper's evaluation ran on the DAS-4 cluster; this repository replaces
//! the physical cluster with a deterministic discrete-event simulation, so
//! every experiment is bit-reproducible.
//!
//! Design:
//!
//! * Virtual time is [`SimTime`], a `u64` count of nanoseconds.
//! * The engine [`Sim<W>`] owns the event queue: a slab arena of reusable
//!   event slots (closures up to 48 bytes stored inline, no per-event
//!   allocation in steady state) ordered by an index-based 4-ary min-heap,
//!   with O(1) tombstone cancellation. Events are `FnOnce` closures
//!   receiving the user *world* (`&mut W`) and the engine itself so they
//!   can schedule follow-up events.
//! * Ties are broken by insertion sequence number, which (together with seeded
//!   RNG streams from [`rng`]) makes runs deterministic.
//! * [`trace`] records activity spans per lane and renders the Gantt charts of
//!   the paper's Figs. 16/17.
//!
//! ```
//! use cashmere_des::{Sim, SimTime};
//!
//! let mut sim: Sim<u64> = Sim::new(42);
//! let mut world = 0u64;
//! sim.schedule_in(SimTime::from_micros(5), |w: &mut u64, sim: &mut Sim<u64>| {
//!     *w += 1;
//!     sim.schedule_in(SimTime::from_micros(5), |w: &mut u64, _: &mut Sim<u64>| *w += 10);
//! });
//! sim.run(&mut world);
//! assert_eq!(world, 11);
//! assert_eq!(sim.now(), SimTime::from_micros(10));
//! ```

pub mod engine;
pub mod fault;
pub mod obs;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use engine::{Event, EventHandle, Sim};
pub use fault::{
    DeviceFailure, FaultInjector, FaultPlan, LaunchFaultWindow, LinkFault, MessageFate, NodeCrash,
    NodeJoin,
};
pub use obs::{
    ChromeTrace, CriticalPath, LatencyHistogram, MetricsRegistry, ProbeSeries, RunDiff,
    RunFingerprint,
};
pub use resource::Resource;
pub use rng::StreamRng;
pub use stats::{Counter, TimeWeighted};
pub use time::SimTime;
pub use trace::{Gantt, LaneId, Span, SpanId, SpanKind, Trace};
