//! The event-driven simulation engine.
//!
//! Events are boxed `FnOnce(&mut W, &mut Sim<W>)` closures over a user-defined
//! world type `W`. The engine pops events in `(time, sequence)` order, so two
//! events scheduled for the same instant fire in the order they were
//! scheduled — this is what makes runs deterministic.

use crate::obs::MetricsRegistry;
use crate::time::SimTime;
use crate::trace::Trace;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// An event callback: runs at its scheduled time with access to the world and
/// the engine (to schedule follow-ups).
pub type Event<W> = Box<dyn FnOnce(&mut W, &mut Sim<W>)>;

/// Handle to a scheduled event, usable to cancel it before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

struct Scheduled<W> {
    time: SimTime,
    seq: u64,
    f: Event<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    // Reversed: BinaryHeap is a max-heap, we want the earliest event first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// The discrete-event simulation engine.
///
/// `W` is the user-defined world; the engine never inspects it, it only
/// threads `&mut W` through event callbacks. The engine also carries the
/// activity [`Trace`] so that event code anywhere in the stack can record
/// Gantt spans without extra plumbing.
pub struct Sim<W> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Scheduled<W>>,
    cancelled: HashSet<u64>,
    events_fired: u64,
    /// Activity trace (Gantt spans, see [`crate::trace`]).
    pub trace: Trace,
    /// Metrics registry (counters, gauges, histograms; see [`crate::obs`]).
    pub metrics: MetricsRegistry,
    seed: u64,
}

impl<W> Sim<W> {
    /// Create an engine. `seed` is the master seed from which all component
    /// RNG streams are derived (see [`crate::rng::StreamRng`]).
    pub fn new(seed: u64) -> Self {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            cancelled: HashSet::new(),
            events_fired: 0,
            trace: Trace::new(),
            metrics: MetricsRegistry::new(),
            seed,
        }
    }

    /// The master seed this simulation was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_fired(&self) -> u64 {
        self.events_fired
    }

    /// Number of events currently pending (including cancelled-but-unpopped).
    pub fn pending(&self) -> usize {
        self.queue.len() - self.cancelled.len()
    }

    /// Schedule `f` at absolute time `at`. Panics if `at` is in the past.
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F) -> EventHandle
    where
        F: FnOnce(&mut W, &mut Sim<W>) + 'static,
    {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={} at={}",
            self.now,
            at
        );
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled {
            time: at,
            seq,
            f: Box::new(f),
        });
        EventHandle(seq)
    }

    /// Schedule `f` after a delay from now.
    pub fn schedule_in<F>(&mut self, delay: SimTime, f: F) -> EventHandle
    where
        F: FnOnce(&mut W, &mut Sim<W>) + 'static,
    {
        self.schedule_at(self.now + delay, f)
    }

    /// Schedule `f` to run at the current time, after all events already
    /// scheduled for the current time.
    pub fn schedule_now<F>(&mut self, f: F) -> EventHandle
    where
        F: FnOnce(&mut W, &mut Sim<W>) + 'static,
    {
        self.schedule_at(self.now, f)
    }

    /// Cancel a pending event. Returns `true` if the event had not fired yet.
    pub fn cancel(&mut self, h: EventHandle) -> bool {
        if h.0 >= self.seq {
            return false;
        }
        self.cancelled.insert(h.0)
    }

    /// Execute the single next event, if any. Returns `false` when the queue
    /// is empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        while let Some(ev) = self.queue.pop() {
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            debug_assert!(ev.time >= self.now, "event queue went backwards");
            self.now = ev.time;
            self.events_fired += 1;
            (ev.f)(world, self);
            return true;
        }
        false
    }

    /// Run until the event queue is empty.
    pub fn run(&mut self, world: &mut W) {
        while self.step(world) {}
    }

    /// Run until the event queue is empty or virtual time would exceed
    /// `until`. Events scheduled exactly at `until` are executed.
    pub fn run_until(&mut self, world: &mut W, until: SimTime) {
        loop {
            match self.peek_time() {
                Some(t) if t <= until => {
                    self.step(world);
                }
                _ => break,
            }
        }
    }

    /// Time of the next pending event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Drop cancelled events from the top so peek is accurate.
        while let Some(top) = self.queue.peek() {
            if self.cancelled.contains(&top.seq) {
                let ev = self.queue.pop().expect("peeked event vanished");
                self.cancelled.remove(&ev.seq);
            } else {
                return Some(top.time);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim: Sim<Vec<u32>> = Sim::new(1);
        let mut world = Vec::new();
        sim.schedule_at(SimTime::from_nanos(30), |w: &mut Vec<u32>, _| w.push(3));
        sim.schedule_at(SimTime::from_nanos(10), |w: &mut Vec<u32>, _| w.push(1));
        sim.schedule_at(SimTime::from_nanos(20), |w: &mut Vec<u32>, _| w.push(2));
        sim.run(&mut world);
        assert_eq!(world, vec![1, 2, 3]);
        assert_eq!(sim.events_fired(), 3);
    }

    #[test]
    fn ties_fire_in_schedule_order() {
        let mut sim: Sim<Vec<u32>> = Sim::new(1);
        let mut world = Vec::new();
        for i in 0..100u32 {
            sim.schedule_at(SimTime::from_nanos(5), move |w: &mut Vec<u32>, _| w.push(i));
        }
        sim.run(&mut world);
        assert_eq!(world, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim: Sim<u64> = Sim::new(1);
        let mut world = 0u64;
        // A chain of 1000 events, each scheduling the next.
        fn chain(w: &mut u64, sim: &mut Sim<u64>) {
            *w += 1;
            if *w < 1000 {
                sim.schedule_in(SimTime::from_nanos(1), chain);
            }
        }
        sim.schedule_now(chain);
        sim.run(&mut world);
        assert_eq!(world, 1000);
        assert_eq!(sim.now(), SimTime::from_nanos(999));
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut sim: Sim<u32> = Sim::new(1);
        let mut world = 0;
        let h = sim.schedule_at(SimTime::from_nanos(10), |w: &mut u32, _| *w += 1);
        sim.schedule_at(SimTime::from_nanos(20), |w: &mut u32, _| *w += 10);
        assert!(sim.cancel(h));
        assert!(!sim.cancel(h), "double-cancel reports false");
        sim.run(&mut world);
        assert_eq!(world, 10);
    }

    #[test]
    fn cancel_unknown_handle_is_false() {
        let mut sim: Sim<u32> = Sim::new(1);
        assert!(!sim.cancel(EventHandle(99)));
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut sim: Sim<Vec<u64>> = Sim::new(1);
        let mut world = Vec::new();
        for t in [5u64, 10, 15, 20] {
            sim.schedule_at(SimTime::from_nanos(t), move |w: &mut Vec<u64>, _| w.push(t));
        }
        sim.run_until(&mut world, SimTime::from_nanos(15));
        assert_eq!(world, vec![5, 10, 15]);
        assert_eq!(sim.pending(), 1);
        sim.run(&mut world);
        assert_eq!(world, vec![5, 10, 15, 20]);
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut sim: Sim<u32> = Sim::new(1);
        let h = sim.schedule_at(SimTime::from_nanos(10), |_, _| {});
        sim.schedule_at(SimTime::from_nanos(20), |_, _| {});
        sim.cancel(h);
        assert_eq!(sim.peek_time(), Some(SimTime::from_nanos(20)));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim: Sim<u32> = Sim::new(1);
        let mut world = 0;
        sim.schedule_at(SimTime::from_nanos(10), |_, sim: &mut Sim<u32>| {
            sim.schedule_at(SimTime::from_nanos(5), |_, _| {});
        });
        sim.run(&mut world);
    }

    #[test]
    fn deterministic_across_runs() {
        fn run_once() -> (u64, SimTime) {
            let mut sim: Sim<u64> = Sim::new(7);
            let mut world = 0u64;
            for i in 0..50u64 {
                sim.schedule_at(
                    SimTime::from_nanos(i % 7),
                    move |w: &mut u64, s: &mut Sim<u64>| {
                        *w = w.wrapping_mul(31).wrapping_add(i);
                        s.schedule_in(SimTime::from_nanos(i), move |w: &mut u64, _| {
                            *w = w.wrapping_add(i * i);
                        });
                    },
                );
            }
            sim.run(&mut world);
            (world, sim.now())
        }
        assert_eq!(run_once(), run_once());
    }
}
