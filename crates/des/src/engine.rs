//! The event-driven simulation engine.
//!
//! Events are boxed `FnOnce(&mut W, &mut Sim<W>)` closures over a user-defined
//! world type `W`. The engine pops events in `(time, sequence)` order, so two
//! events scheduled for the same instant fire in the order they were
//! scheduled — this is what makes runs deterministic.
//!
//! ## Data structures
//!
//! Reproducing the paper's figures means running hundreds of full-cluster
//! simulations, so the queue is built for throughput:
//!
//! * **Slab-backed event arena with inline closures.** Event closures live
//!   in [`Slot`]s of a `Vec` recycled through a free list, so the slab and
//!   the heap reach a high-water mark once and are reused for the rest of
//!   the run. Closures up to 64 bytes (all of the simulator's hot-path
//!   events) are stored *inline* in the slot — scheduling and firing an
//!   event performs no heap allocation at all; larger ones fall back to a
//!   transparent `Box`. A slot index is stable for the lifetime of its
//!   event, which gives O(1) cancellation without any hash map.
//! * **Index-based 4-ary min-heap.** The heap orders 24-byte entries of a
//!   packed `(time, seq)` `u128` key plus the slot index — the boxed
//!   closures never move during sift operations. A 4-ary layout halves the
//!   tree depth of a binary heap and keeps each sift's child scan inside one
//!   or two cache lines.
//! * **In-slab tombstone cancellation.** [`Sim::cancel`] drops the closure
//!   immediately and marks the slot; the heap entry is discarded lazily when
//!   it surfaces. The pop path never consults a hash set (the previous
//!   design paid a `HashSet` lookup per pop). Cancelling the current heap
//!   minimum eagerly drains it, which maintains the invariant that the heap
//!   top is always live — so [`Sim::peek_time`] is a true `&self` read.

use crate::obs::{prof, MetricsRegistry};
use crate::time::SimTime;
use crate::trace::Trace;

/// An event callback: runs at its scheduled time with access to the world and
/// the engine (to schedule follow-ups).
pub type Event<W> = Box<dyn FnOnce(&mut W, &mut Sim<W>)>;

/// Handle to a scheduled event, usable to cancel it before it fires.
///
/// The handle pairs the event's slab slot with its unique sequence number;
/// a reused slot no longer matches a stale handle's sequence, so cancelling
/// an already-fired (or already-cancelled) event is a safe no-op that
/// returns `false`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle {
    slot: u32,
    seq: u64,
}

/// Closure payloads up to this many bytes (and alignment ≤ 8) are stored
/// inline in the arena slot — no heap allocation at all. Larger or
/// over-aligned closures fall back to a `Box<dyn FnOnce>` whose fat pointer
/// is stored in the same buffer. Sized to fit the work-stealing engine's
/// largest hot-path captures (a `Vec` of children plus a few indices).
const INLINE_EVENT_WORDS: usize = 6;

/// 8-aligned inline storage for an event closure (or the boxed fallback).
#[derive(Clone, Copy)]
struct EventData([std::mem::MaybeUninit<u64>; INLINE_EVENT_WORDS]);

impl EventData {
    const EMPTY: EventData = EventData([std::mem::MaybeUninit::uninit(); INLINE_EVENT_WORDS]);

    #[inline(always)]
    fn as_mut_ptr(&mut self) -> *mut u8 {
        self.0.as_mut_ptr() as *mut u8
    }
}

/// Reads the closure of concrete type `F` out of `p` and invokes it.
///
/// Safety: `p` must hold a valid, initialized `F` which is logically moved
/// out by this call (the caller must not drop or reuse it afterwards).
unsafe fn call_inline<W, F: FnOnce(&mut W, &mut Sim<W>)>(p: *mut u8, w: &mut W, sim: &mut Sim<W>) {
    (p as *mut F).read()(w, sim)
}

/// Boxed-fallback twin of [`call_inline`]: `p` holds an `Event<W>` fat
/// pointer; the box is moved out, invoked, and freed.
unsafe fn call_boxed<W>(p: *mut u8, w: &mut W, sim: &mut Sim<W>) {
    (p as *mut Event<W>).read()(w, sim)
}

/// Drops a still-stored payload of type `T` in place (cancellation and
/// engine drop; fired events are consumed by their `call` instead).
unsafe fn drop_payload<T>(p: *mut u8) {
    std::ptr::drop_in_place(p as *mut T)
}

/// One arena slot. `call` is `Some` while the event is pending; cancellation
/// drops the payload in place (the tombstone) and firing moves it out. The
/// sequence number distinguishes the current occupant from stale handles.
struct Slot<W> {
    seq: u64,
    call: Option<unsafe fn(*mut u8, &mut W, &mut Sim<W>)>,
    /// Valid whenever `call` is `Some`; drops the payload without running it.
    drop_fn: unsafe fn(*mut u8),
    /// Event kind for the host self-profiler's dispatch bucketing (see
    /// [`crate::obs::prof`]); assigned at schedule time, `'static` so the
    /// hot path stores a pointer, never a string.
    kind: &'static str,
    data: EventData,
}

impl<W> Slot<W> {
    /// Store `f` in the slot: inline when it fits, boxed otherwise. The
    /// size/alignment test is a monomorphized constant, so each call site
    /// compiles to exactly one of the two paths.
    #[inline]
    fn store<F>(&mut self, seq: u64, f: F)
    where
        F: FnOnce(&mut W, &mut Sim<W>) + 'static,
    {
        debug_assert!(self.call.is_none(), "storing into an occupied slot");
        self.seq = seq;
        if std::mem::size_of::<F>() <= INLINE_EVENT_WORDS * 8 && std::mem::align_of::<F>() <= 8 {
            unsafe { (self.data.as_mut_ptr() as *mut F).write(f) };
            self.call = Some(call_inline::<W, F>);
            self.drop_fn = drop_payload::<F>;
        } else {
            let boxed: Event<W> = Box::new(f);
            unsafe { (self.data.as_mut_ptr() as *mut Event<W>).write(boxed) };
            self.call = Some(call_boxed::<W>);
            self.drop_fn = drop_payload::<Event<W>>;
        }
    }

    /// Drop the pending payload without running it. No-op on empty slots.
    #[inline]
    fn clear(&mut self) -> bool {
        match self.call.take() {
            Some(_) => {
                unsafe { (self.drop_fn)(self.data.as_mut_ptr()) };
                true
            }
            None => false,
        }
    }
}

/// Heap entry: the event's time and sequence number plus the arena slot
/// holding its closure. Ordering compares the `(time, seq)` pair packed
/// into one `u128` (time in the high 64 bits), a single wide integer
/// compare; the fields stay separate in memory so the entry is 24 bytes
/// (8-aligned) instead of a 32-byte 16-aligned struct.
#[derive(Clone, Copy)]
struct HeapEntry {
    time: u64,
    seq: u64,
    slot: u32,
}

impl HeapEntry {
    /// The packed `(time, seq)` ordering key.
    #[inline(always)]
    fn key(self) -> u128 {
        ((self.time as u128) << 64) | self.seq as u128
    }
}

/// The discrete-event simulation engine.
///
/// `W` is the user-defined world; the engine never inspects it, it only
/// threads `&mut W` through event callbacks. The engine also carries the
/// activity [`Trace`] so that event code anywhere in the stack can record
/// Gantt spans without extra plumbing.
pub struct Sim<W> {
    now: SimTime,
    seq: u64,
    heap: Vec<HeapEntry>,
    slots: Vec<Slot<W>>,
    free: Vec<u32>,
    /// Number of tombstoned entries still sitting in the heap.
    cancelled: usize,
    events_fired: u64,
    /// Activity trace (Gantt spans, see [`crate::trace`]).
    pub trace: Trace,
    /// Metrics registry (counters, gauges, histograms; see [`crate::obs`]).
    pub metrics: MetricsRegistry,
    seed: u64,
}

impl<W> Sim<W> {
    /// Create an engine. `seed` is the master seed from which all component
    /// RNG streams are derived (see [`crate::rng::StreamRng`]).
    pub fn new(seed: u64) -> Self {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            heap: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            cancelled: 0,
            events_fired: 0,
            trace: Trace::new(),
            metrics: MetricsRegistry::new(),
            seed,
        }
    }

    /// The master seed this simulation was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn events_fired(&self) -> u64 {
        self.events_fired
    }

    /// Number of events currently pending (cancelled events excluded).
    pub fn pending(&self) -> usize {
        self.heap.len() - self.cancelled
    }

    /// Schedule `f` at absolute time `at`. Panics if `at` is in the past.
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F) -> EventHandle
    where
        F: FnOnce(&mut W, &mut Sim<W>) + 'static,
    {
        self.schedule_at_as("event::other", at, f)
    }

    /// [`Sim::schedule_at`] with an event kind for the self-profiler's
    /// dispatch bucketing. `kind` names the frame the event's execution is
    /// charged to (e.g. `"event::steal"`); unnamed schedules all land in
    /// `"event::other"`.
    pub fn schedule_at_as<F>(&mut self, kind: &'static str, at: SimTime, f: F) -> EventHandle
    where
        F: FnOnce(&mut W, &mut Sim<W>) + 'static,
    {
        let _prof = prof::scope("des::schedule");
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={} at={}",
            self.now,
            at
        );
        let seq = self.seq;
        self.seq += 1;
        let slot = match self.free.pop() {
            Some(i) => i,
            None => {
                debug_assert!(self.slots.len() < u32::MAX as usize, "event arena full");
                self.slots.push(Slot {
                    seq,
                    call: None,
                    drop_fn: drop_payload::<()>,
                    kind,
                    data: EventData::EMPTY,
                });
                (self.slots.len() - 1) as u32
            }
        };
        let s = &mut self.slots[slot as usize];
        s.kind = kind;
        s.store(seq, f);
        self.heap_push(HeapEntry {
            time: at.as_nanos(),
            seq,
            slot,
        });
        EventHandle { slot, seq }
    }

    /// Schedule `f` after a delay from now.
    pub fn schedule_in<F>(&mut self, delay: SimTime, f: F) -> EventHandle
    where
        F: FnOnce(&mut W, &mut Sim<W>) + 'static,
    {
        self.schedule_at(self.now + delay, f)
    }

    /// [`Sim::schedule_in`] with an event kind (see [`Sim::schedule_at_as`]).
    pub fn schedule_in_as<F>(&mut self, kind: &'static str, delay: SimTime, f: F) -> EventHandle
    where
        F: FnOnce(&mut W, &mut Sim<W>) + 'static,
    {
        self.schedule_at_as(kind, self.now + delay, f)
    }

    /// Schedule `f` to run at the current time, after all events already
    /// scheduled for the current time.
    pub fn schedule_now<F>(&mut self, f: F) -> EventHandle
    where
        F: FnOnce(&mut W, &mut Sim<W>) + 'static,
    {
        self.schedule_at(self.now, f)
    }

    /// [`Sim::schedule_now`] with an event kind (see [`Sim::schedule_at_as`]).
    pub fn schedule_now_as<F>(&mut self, kind: &'static str, f: F) -> EventHandle
    where
        F: FnOnce(&mut W, &mut Sim<W>) + 'static,
    {
        self.schedule_at_as(kind, self.now, f)
    }

    /// Cancel a pending event. Returns `true` if the event had not fired and
    /// had not already been cancelled; stale handles (fired, cancelled, or
    /// from a slot since reused) return `false` and change nothing.
    pub fn cancel(&mut self, h: EventHandle) -> bool {
        let _prof = prof::scope("des::cancel");
        let Some(slot) = self.slots.get_mut(h.slot as usize) else {
            return false;
        };
        if slot.seq != h.seq || !slot.clear() {
            return false;
        }
        // The closure is dropped; the heap entry becomes a tombstone.
        self.cancelled += 1;
        self.drain_cancelled_top();
        true
    }

    /// Discard tombstoned entries sitting at the heap top. Called after
    /// every mutation that can surface a tombstone there ([`Sim::cancel`],
    /// the pop in [`Sim::step`]), which keeps the invariant that the heap
    /// minimum is always a live event — and [`Sim::peek_time`] read-only.
    fn drain_cancelled_top(&mut self) {
        while let Some(top) = self.heap.first() {
            if self.slots[top.slot as usize].call.is_some() {
                break;
            }
            let e = self.heap_pop().expect("peeked heap entry vanished");
            self.cancelled -= 1;
            self.free.push(e.slot);
        }
    }

    /// Execute the single next event, if any. Returns `false` when the queue
    /// is empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        let heap_scope = prof::scope("des::heap");
        let Some(e) = self.heap_pop() else {
            return false;
        };
        // The heap top is never a tombstone (see `drain_cancelled_top`), so
        // the popped entry is always live. Move the payload bits out to the
        // stack and free the slot *before* invoking, so the callback may
        // freely schedule into (and reuse) it.
        let slot = &mut self.slots[e.slot as usize];
        let call = slot.call.take().expect("heap top was a tombstone");
        let kind = slot.kind;
        let mut data = slot.data;
        self.free.push(e.slot);
        if self.cancelled > 0 {
            self.drain_cancelled_top();
        }
        drop(heap_scope);
        let time = SimTime::from_nanos(e.time);
        debug_assert!(time >= self.now, "event queue went backwards");
        self.now = time;
        self.events_fired += 1;
        // Dispatch bucketed by event kind: the callback's wall time (and
        // everything it calls — kernel interpretation, balancer decisions,
        // follow-up schedules) lands under the kind's frame.
        let _prof = prof::scope(kind);
        unsafe { call(data.as_mut_ptr(), world, self) };
        true
    }

    /// Run until the event queue is empty.
    pub fn run(&mut self, world: &mut W) {
        while self.step(world) {}
    }

    /// Run until the event queue is empty or virtual time would exceed
    /// `until`. Events scheduled exactly at `until` are executed.
    pub fn run_until(&mut self, world: &mut W, until: SimTime) {
        loop {
            match self.peek_time() {
                Some(t) if t <= until => {
                    self.step(world);
                }
                _ => break,
            }
        }
    }

    /// Time of the next pending event. A pure read: cancelled events are
    /// drained from the heap top eagerly at cancellation time, so the heap
    /// minimum is always live.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|e| SimTime::from_nanos(e.time))
    }

    /// Sift `e` up from the bottom of the heap. Hole-based: parents shift
    /// down into the hole and `e` is written once at its final position.
    #[inline]
    fn heap_push(&mut self, e: HeapEntry) {
        self.heap.push(e); // reserve the new bottom position as the hole
        let heap = &mut self.heap[..];
        let key = e.key();
        let mut i = heap.len() - 1;
        while i > 0 {
            let p = (i - 1) / 4;
            if heap[p].key() <= key {
                break;
            }
            heap[i] = heap[p];
            i = p;
        }
        heap[i] = e;
    }

    /// Pop the minimum entry. The displaced bottom element sifts down from
    /// the root through a hole (one write per level, not a swap).
    #[inline]
    fn heap_pop(&mut self) -> Option<HeapEntry> {
        let min = *self.heap.first()?;
        let last = self.heap.pop().expect("heap is non-empty");
        let heap = &mut self.heap[..];
        let n = heap.len();
        if n > 0 {
            let key = last.key();
            let mut i = 0;
            loop {
                let c0 = 4 * i + 1;
                if c0 >= n {
                    break;
                }
                let end = (c0 + 4).min(n);
                let mut m = c0;
                let mut mk = heap[c0].key();
                for (c, e) in heap.iter().enumerate().take(end).skip(c0 + 1) {
                    let k = e.key();
                    if k < mk {
                        m = c;
                        mk = k;
                    }
                }
                if key <= mk {
                    break;
                }
                heap[i] = heap[m];
                i = m;
            }
            heap[i] = last;
        }
        Some(min)
    }
}

impl<W> Drop for Sim<W> {
    /// Drop payloads still pending in the arena (a simulation abandoned
    /// mid-run, e.g. after `run_until`). Fired and cancelled events were
    /// already consumed; `clear` skips their empty slots.
    fn drop(&mut self) {
        for s in &mut self.slots {
            s.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim: Sim<Vec<u32>> = Sim::new(1);
        let mut world = Vec::new();
        sim.schedule_at(SimTime::from_nanos(30), |w: &mut Vec<u32>, _| w.push(3));
        sim.schedule_at(SimTime::from_nanos(10), |w: &mut Vec<u32>, _| w.push(1));
        sim.schedule_at(SimTime::from_nanos(20), |w: &mut Vec<u32>, _| w.push(2));
        sim.run(&mut world);
        assert_eq!(world, vec![1, 2, 3]);
        assert_eq!(sim.events_fired(), 3);
    }

    #[test]
    fn ties_fire_in_schedule_order() {
        let mut sim: Sim<Vec<u32>> = Sim::new(1);
        let mut world = Vec::new();
        for i in 0..100u32 {
            sim.schedule_at(SimTime::from_nanos(5), move |w: &mut Vec<u32>, _| w.push(i));
        }
        sim.run(&mut world);
        assert_eq!(world, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim: Sim<u64> = Sim::new(1);
        let mut world = 0u64;
        // A chain of 1000 events, each scheduling the next.
        fn chain(w: &mut u64, sim: &mut Sim<u64>) {
            *w += 1;
            if *w < 1000 {
                sim.schedule_in(SimTime::from_nanos(1), chain);
            }
        }
        sim.schedule_now(chain);
        sim.run(&mut world);
        assert_eq!(world, 1000);
        assert_eq!(sim.now(), SimTime::from_nanos(999));
    }

    #[test]
    fn chained_events_reuse_the_slab() {
        let mut sim: Sim<u64> = Sim::new(1);
        let mut world = 0u64;
        fn chain(w: &mut u64, sim: &mut Sim<u64>) {
            *w += 1;
            if *w < 10_000 {
                sim.schedule_in(SimTime::from_nanos(1), chain);
            }
        }
        sim.schedule_now(chain);
        sim.run(&mut world);
        assert_eq!(world, 10_000);
        // One event in flight at a time: the arena never grows past the
        // high-water mark of concurrently pending events.
        assert_eq!(sim.slots.len(), 1, "slab should recycle the single slot");
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut sim: Sim<u32> = Sim::new(1);
        let mut world = 0;
        let h = sim.schedule_at(SimTime::from_nanos(10), |w: &mut u32, _| *w += 1);
        sim.schedule_at(SimTime::from_nanos(20), |w: &mut u32, _| *w += 10);
        assert!(sim.cancel(h));
        assert!(!sim.cancel(h), "double-cancel reports false");
        sim.run(&mut world);
        assert_eq!(world, 10);
    }

    #[test]
    fn cancel_unknown_handle_is_false() {
        let mut sim: Sim<u32> = Sim::new(1);
        assert!(!sim.cancel(EventHandle { slot: 7, seq: 99 }));
    }

    #[test]
    fn cancel_after_fire_is_false_and_keeps_pending_accurate() {
        let mut sim: Sim<u32> = Sim::new(1);
        let mut world = 0;
        let h = sim.schedule_at(SimTime::from_nanos(10), |w: &mut u32, _| *w += 1);
        sim.schedule_at(SimTime::from_nanos(20), |w: &mut u32, _| *w += 10);
        assert!(sim.step(&mut world), "first event fires");
        // The handle's event already ran: cancelling it must fail and must
        // not corrupt the pending count (the old HashSet design recorded the
        // spent seq and made `pending()` underflow).
        assert!(!sim.cancel(h), "cancel of a fired event reports false");
        assert_eq!(sim.pending(), 1);
        sim.run(&mut world);
        assert_eq!(world, 11);
        assert_eq!(sim.pending(), 0);
        assert!(!sim.cancel(h), "still false after the queue drained");
    }

    #[test]
    fn stale_handle_cannot_cancel_slot_reuser() {
        let mut sim: Sim<u32> = Sim::new(1);
        let mut world = 0;
        let h1 = sim.schedule_at(SimTime::from_nanos(10), |w: &mut u32, _| *w += 1);
        sim.step(&mut world);
        // The slot freed by h1's event is reused by the next schedule; the
        // stale handle must not cancel the new occupant.
        let h2 = sim.schedule_at(SimTime::from_nanos(20), |w: &mut u32, _| *w += 10);
        assert_eq!(h1.slot, h2.slot, "slot is recycled");
        assert!(!sim.cancel(h1));
        sim.run(&mut world);
        assert_eq!(world, 11);
    }

    #[test]
    fn pending_counts_live_events_only() {
        let mut sim: Sim<u32> = Sim::new(1);
        let hs: Vec<_> = (0..10)
            .map(|i| sim.schedule_at(SimTime::from_nanos(10 + i), |_, _| {}))
            .collect();
        assert_eq!(sim.pending(), 10);
        for h in &hs[2..5] {
            assert!(sim.cancel(*h));
        }
        assert_eq!(sim.pending(), 7);
        let mut world = 0u32;
        sim.run(&mut world);
        assert_eq!(sim.pending(), 0);
        assert_eq!(sim.events_fired(), 7);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut sim: Sim<Vec<u64>> = Sim::new(1);
        let mut world = Vec::new();
        for t in [5u64, 10, 15, 20] {
            sim.schedule_at(SimTime::from_nanos(t), move |w: &mut Vec<u64>, _| w.push(t));
        }
        sim.run_until(&mut world, SimTime::from_nanos(15));
        assert_eq!(world, vec![5, 10, 15]);
        assert_eq!(sim.pending(), 1);
        sim.run(&mut world);
        assert_eq!(world, vec![5, 10, 15, 20]);
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut sim: Sim<u32> = Sim::new(1);
        let h = sim.schedule_at(SimTime::from_nanos(10), |_, _| {});
        sim.schedule_at(SimTime::from_nanos(20), |_, _| {});
        sim.cancel(h);
        assert_eq!(sim.peek_time(), Some(SimTime::from_nanos(20)));
    }

    #[test]
    fn peek_time_is_live_after_step_uncovers_a_tombstone() {
        let mut sim: Sim<u32> = Sim::new(1);
        sim.schedule_at(SimTime::from_nanos(10), |_, _| {});
        let h = sim.schedule_at(SimTime::from_nanos(20), |_, _| {});
        sim.schedule_at(SimTime::from_nanos(30), |_, _| {});
        // Cancel the middle event while it is not the heap top …
        sim.cancel(h);
        let mut world = 0u32;
        // … then fire the first; the tombstone surfaces and must be drained
        // so `peek_time` (and thus `run_until`) sees 30, not 20.
        sim.step(&mut world);
        assert_eq!(sim.peek_time(), Some(SimTime::from_nanos(30)));
        sim.run_until(&mut world, SimTime::from_nanos(25));
        assert_eq!(sim.events_fired(), 1, "nothing fires inside (10, 25]");
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim: Sim<u32> = Sim::new(1);
        let mut world = 0;
        sim.schedule_at(SimTime::from_nanos(10), |_, sim: &mut Sim<u32>| {
            sim.schedule_at(SimTime::from_nanos(5), |_, _| {});
        });
        sim.run(&mut world);
    }

    #[test]
    fn deterministic_across_runs() {
        fn run_once() -> (u64, SimTime) {
            let mut sim: Sim<u64> = Sim::new(7);
            let mut world = 0u64;
            for i in 0..50u64 {
                sim.schedule_at(
                    SimTime::from_nanos(i % 7),
                    move |w: &mut u64, s: &mut Sim<u64>| {
                        *w = w.wrapping_mul(31).wrapping_add(i);
                        s.schedule_in(SimTime::from_nanos(i), move |w: &mut u64, _| {
                            *w = w.wrapping_add(i * i);
                        });
                    },
                );
            }
            sim.run(&mut world);
            (world, sim.now())
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn heap_orders_many_random_keys() {
        // Deterministic pseudo-random schedule exercising deep sifts.
        let mut sim: Sim<Vec<u64>> = Sim::new(1);
        let mut world = Vec::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..5000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let t = x % 1_000_000;
            sim.schedule_at(SimTime::from_nanos(t), move |w: &mut Vec<u64>, _| w.push(t));
        }
        sim.run(&mut world);
        assert_eq!(world.len(), 5000);
        assert!(world.windows(2).all(|w| w[0] <= w[1]));
    }
}
