//! Virtual time for the simulation: a `u64` count of nanoseconds.
//!
//! `SimTime` doubles as a point in time and as a duration; the simulation
//! starts at `SimTime::ZERO` and durations are added with `+`. Using integer
//! nanoseconds (rather than `f64` seconds) keeps event ordering exact and the
//! whole simulation deterministic.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time (or a duration), in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Negative or non-finite inputs saturate to zero: durations in the
    /// simulation are never negative.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimTime::ZERO;
        }
        let ns = s * 1e9;
        if !ns.is_finite() || ns >= u64::MAX as f64 {
            SimTime::MAX
        } else {
            SimTime(ns.round() as u64)
        }
    }

    /// Nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction: `a.saturating_sub(b)` is zero if `b > a`.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.max(rhs.0))
    }

    /// The earlier of two times.
    #[inline]
    pub fn min(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.min(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0.checked_mul(rhs).expect("SimTime overflow"))
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    /// Human-readable rendering with an adaptive unit (ns/µs/ms/s).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.3}µs", self.as_micros_f64())
        } else if ns < 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
    }

    #[test]
    fn float_roundtrip() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t, SimTime::from_millis(1500));
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn from_secs_f64_saturates() {
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::INFINITY), SimTime::MAX);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_micros(3);
        let b = SimTime::from_micros(2);
        assert_eq!(a + b, SimTime::from_micros(5));
        assert_eq!(a - b, SimTime::from_micros(1));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a * 2, SimTime::from_micros(6));
        assert_eq!(a / 3, SimTime::from_micros(1));
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimTime::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimTime::from_micros(12).to_string(), "12.000µs");
        assert_eq!(SimTime::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimTime::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn sum_iterates() {
        let total: SimTime = (1..=4).map(SimTime::from_nanos).sum();
        assert_eq!(total, SimTime::from_nanos(10));
    }
}
