//! A FIFO multi-server resource for the event model.
//!
//! Models a pool of `capacity` identical servers (e.g. the CPU cores of a
//! cluster node, or the DMA engines of a GPU). Acquirers that cannot be
//! served immediately wait in FIFO order; completing work releases a server
//! to the next waiter. The resource lives inside the user's world type and
//! receives `&mut Sim<W>` to schedule continuations.

use crate::engine::{Event, Sim};
use crate::stats::{Counter, TimeWeighted};
use crate::time::SimTime;
use std::collections::VecDeque;

/// A FIFO resource with `capacity` servers.
pub struct Resource<W> {
    name: String,
    capacity: usize,
    in_use: usize,
    waiters: VecDeque<(SimTime, Event<W>)>,
    /// Total acquisitions granted.
    pub acquisitions: Counter,
    /// Total time spent waiting across all acquirers (ns).
    pub total_wait: SimTime,
    utilization: TimeWeighted,
}

impl<W> std::fmt::Debug for Resource<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Resource")
            .field("name", &self.name)
            .field("capacity", &self.capacity)
            .field("in_use", &self.in_use)
            .field("waiting", &self.waiters.len())
            .finish()
    }
}

impl<W: 'static> Resource<W> {
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        assert!(capacity > 0, "resource needs at least one server");
        Resource {
            name: name.into(),
            capacity,
            in_use: 0,
            waiters: VecDeque::new(),
            acquisitions: Counter::default(),
            total_wait: SimTime::ZERO,
            utilization: TimeWeighted::new(SimTime::ZERO, 0.0),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Servers currently held.
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Acquirers currently queued.
    pub fn waiting(&self) -> usize {
        self.waiters.len()
    }

    /// `true` if a server is free right now.
    pub fn available(&self) -> bool {
        self.in_use < self.capacity
    }

    /// Request a server; `f` runs (as a fresh event at the current time) once
    /// one is granted. The caller must later call [`Resource::release`].
    pub fn acquire<F>(&mut self, sim: &mut Sim<W>, f: F)
    where
        F: FnOnce(&mut W, &mut Sim<W>) + 'static,
    {
        if self.in_use < self.capacity {
            self.in_use += 1;
            self.acquisitions.inc();
            self.utilization.update(sim.now(), self.in_use as f64);
            sim.schedule_now(f);
        } else {
            self.waiters.push_back((sim.now(), Box::new(f)));
        }
    }

    /// Release one server. If someone is waiting the server is handed over
    /// directly (the count stays constant); otherwise it becomes free.
    pub fn release(&mut self, sim: &mut Sim<W>) {
        assert!(self.in_use > 0, "release on idle resource {}", self.name);
        if let Some((enq, f)) = self.waiters.pop_front() {
            self.total_wait += sim.now() - enq;
            self.acquisitions.inc();
            sim.schedule_now(f);
        } else {
            self.in_use -= 1;
            self.utilization.update(sim.now(), self.in_use as f64);
        }
    }

    /// Mean number of busy servers over the run so far.
    pub fn mean_utilization(&self, now: SimTime) -> f64 {
        self.utilization.mean(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct World {
        res: Option<Resource<World>>,
        order: Vec<u32>,
    }

    /// Helper: temporarily take the resource out of the world to avoid
    /// aliasing `&mut world.res` with the `&mut World` the callback needs.
    fn with_res(
        w: &mut World,
        sim: &mut Sim<World>,
        f: impl FnOnce(&mut Resource<World>, &mut Sim<World>),
    ) {
        let mut res = w.res.take().expect("resource in use");
        f(&mut res, sim);
        w.res = Some(res);
    }

    #[test]
    fn fifo_granting_with_capacity_two() {
        let mut sim: Sim<World> = Sim::new(1);
        let mut world = World {
            res: Some(Resource::new("cores", 2)),
            order: Vec::new(),
        };
        // Five tasks, each holds a server for 10ns.
        for i in 0..5u32 {
            sim.schedule_at(
                SimTime::from_nanos(u64::from(i)),
                move |w: &mut World, sim| {
                    with_res(w, sim, |res, sim| {
                        res.acquire(sim, move |w: &mut World, sim| {
                            w.order.push(i);
                            sim.schedule_in(SimTime::from_nanos(10), move |w: &mut World, sim| {
                                with_res(w, sim, |res, sim| res.release(sim));
                            });
                        });
                    });
                },
            );
        }
        sim.run(&mut world);
        assert_eq!(world.order, vec![0, 1, 2, 3, 4], "FIFO order preserved");
        let res = world.res.as_ref().unwrap();
        assert_eq!(res.acquisitions.get(), 5);
        assert_eq!(res.in_use(), 0);
        // Tasks 0,1 start ~immediately; 2,3 wait until t=10; 4 until t=20.
        assert!(res.total_wait > SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "release on idle")]
    fn release_without_acquire_panics() {
        let mut sim: Sim<World> = Sim::new(1);
        let mut r: Resource<World> = Resource::new("x", 1);
        r.release(&mut sim);
    }

    #[test]
    fn availability_reflects_state() {
        let mut sim: Sim<World> = Sim::new(1);
        let mut world = World {
            res: Some(Resource::new("one", 1)),
            order: Vec::new(),
        };
        sim.schedule_now(|w: &mut World, sim| {
            with_res(w, sim, |res, sim| {
                assert!(res.available());
                res.acquire(sim, |_, _| {});
            });
        });
        sim.schedule_at(SimTime::from_nanos(1), |w: &mut World, _| {
            let res = w.res.as_ref().unwrap();
            assert!(!res.available());
            assert_eq!(res.in_use(), 1);
        });
        sim.run(&mut world);
    }
}
