//! Small statistics helpers used across the simulation stack.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(pub u64);

impl Counter {
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }
}

/// Time-weighted average of a piecewise-constant quantity (queue length,
/// number of busy cores, …). Call [`TimeWeighted::update`] whenever the value
/// changes; the mean over `[start, now]` is then available.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    weighted_sum: f64,
    start: SimTime,
    max: f64,
}

impl TimeWeighted {
    /// Start tracking at `now` with initial `value`.
    pub fn new(now: SimTime, value: f64) -> Self {
        TimeWeighted {
            last_time: now,
            last_value: value,
            weighted_sum: 0.0,
            start: now,
            max: value,
        }
    }

    /// Record that the value changed to `value` at time `now`.
    pub fn update(&mut self, now: SimTime, value: f64) {
        debug_assert!(now >= self.last_time, "time went backwards");
        let dt = (now - self.last_time).as_secs_f64();
        self.weighted_sum += self.last_value * dt;
        self.last_time = now;
        self.last_value = value;
        if value > self.max {
            self.max = value;
        }
    }

    /// Like [`TimeWeighted::update`], but tolerates out-of-order timestamps
    /// by clamping `now` to the last update time. Used by the metrics layer,
    /// where overlapping leaf submissions can observe a gauge slightly in the
    /// past relative to its latest update.
    pub fn update_clamped(&mut self, now: SimTime, value: f64) {
        self.update(now.max(self.last_time), value);
    }

    /// Current value.
    pub fn value(&self) -> f64 {
        self.last_value
    }

    /// Maximum value observed.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Time-weighted mean over `[start, now]`, including the tail segment
    /// between the last update and `now` at the current value — so
    /// finalizing at run end (makespan) weights the closing quiet period,
    /// not just the recorded transitions. Returns the current value when no
    /// time has elapsed; a `now` before the last update (a gauge finalized
    /// against a horizon shorter than its history) clamps the tail to zero
    /// instead of underflowing.
    pub fn mean(&self, now: SimTime) -> f64 {
        let total = now.saturating_sub(self.start).as_secs_f64();
        if total <= 0.0 {
            return self.last_value;
        }
        let tail = now.saturating_sub(self.last_time).as_secs_f64();
        (self.weighted_sum + self.last_value * tail) / total
    }
}

/// Summary statistics over a set of `f64` samples.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Summary {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl Summary {
    pub fn record(&mut self, x: f64) {
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        self.sum += x;
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn counter_counts() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn time_weighted_mean() {
        let mut tw = TimeWeighted::new(t(0), 0.0);
        tw.update(t(1_000_000_000), 10.0); // value 0 for 1s
        tw.update(t(3_000_000_000), 0.0); // value 10 for 2s
                                          // mean over 4s: (0*1 + 10*2 + 0*1) / 4 = 5
        let m = tw.mean(t(4_000_000_000));
        assert!((m - 5.0).abs() < 1e-9, "mean = {m}");
        assert_eq!(tw.max(), 10.0);
        assert_eq!(tw.value(), 0.0);
    }

    #[test]
    fn time_weighted_zero_elapsed() {
        let tw = TimeWeighted::new(t(5), 7.0);
        assert_eq!(tw.mean(t(5)), 7.0);
    }

    #[test]
    fn time_weighted_mean_includes_tail_to_run_end() {
        // Gauge finalization: the segment between the last update and run
        // end must be weighted. 0.0 for 2s, then 4.0 for the remaining 8s
        // of a 10s run — the mean is exactly (0*2 + 4*8)/10 = 3.2, not the
        // 0.0 a last-update cutoff would report.
        let mut tw = TimeWeighted::new(t(0), 0.0);
        tw.update(t(2_000_000_000), 4.0);
        assert_eq!(tw.mean(t(10_000_000_000)), 3.2);
    }

    #[test]
    fn time_weighted_mean_clamps_a_short_horizon() {
        // Finalizing at a horizon before the last update must not
        // underflow: the tail clamps to zero, leaving the recorded
        // segment (1.0 over 8s) divided by the 5s window.
        let mut tw = TimeWeighted::new(t(0), 1.0);
        tw.update(t(8_000_000_000), 2.0);
        assert_eq!(tw.mean(t(5_000_000_000)), 1.6);
    }

    #[test]
    fn summary_tracks_min_max_mean() {
        let mut s = Summary::default();
        for x in [3.0, 1.0, 2.0] {
            s.record(x);
        }
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_mean_is_zero() {
        assert_eq!(Summary::default().mean(), 0.0);
    }
}
