//! Activity tracing and Gantt-chart rendering.
//!
//! The paper's Figs. 16/17 show Gantt charts of a heterogeneous K-means run:
//! lanes ("queues") per activity class per node, with narrow bars for CPU and
//! transfer tasks and wide bars for kernel executions. This module records
//! exactly that: spans `(lane, kind, label, start, end)` plus CSV and ASCII
//! renderers used by the `gantt` bench harness.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Identifies a trace lane (a row of the Gantt chart).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LaneId(pub usize);

/// Classification of an activity span; selects the glyph used in the ASCII
/// rendering and lets the zoomed-out chart (Fig. 17) filter to kernels only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpanKind {
    /// Kernel execution on a many-core device (wide bars in Fig. 16).
    Kernel,
    /// Host-to-device transfer over PCIe.
    CopyToDevice,
    /// Device-to-host transfer over PCIe.
    CopyFromDevice,
    /// CPU-side task (job management, combine, leaf-on-CPU).
    CpuTask,
    /// Network send/receive between cluster nodes.
    Network,
    /// Work-steal protocol activity.
    Steal,
    /// Anything else.
    Other,
}

impl SpanKind {
    /// Glyph used by the ASCII Gantt renderer.
    pub fn glyph(self) -> char {
        match self {
            SpanKind::Kernel => '#',
            SpanKind::CopyToDevice => '>',
            SpanKind::CopyFromDevice => '<',
            SpanKind::CpuTask => '-',
            SpanKind::Network => '~',
            SpanKind::Steal => '*',
            SpanKind::Other => '.',
        }
    }

    /// Short name used in CSV output.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Kernel => "kernel",
            SpanKind::CopyToDevice => "copy_to_device",
            SpanKind::CopyFromDevice => "copy_from_device",
            SpanKind::CpuTask => "cpu",
            SpanKind::Network => "network",
            SpanKind::Steal => "steal",
            SpanKind::Other => "other",
        }
    }
}

/// One recorded activity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Span {
    pub lane: LaneId,
    pub kind: SpanKind,
    pub label: String,
    pub start: SimTime,
    pub end: SimTime,
}

/// Recorder for activity spans. Disabled by default (recording costs memory
/// proportional to the number of activities); the Gantt harness enables it.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    lanes: Vec<String>,
    spans: Vec<Span>,
    enabled: bool,
}

impl Trace {
    pub fn new() -> Self {
        Trace::default()
    }

    /// Turn recording on or off. Lane registration works either way.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Register a lane (a Gantt row) and get its id.
    pub fn add_lane(&mut self, name: impl Into<String>) -> LaneId {
        self.lanes.push(name.into());
        LaneId(self.lanes.len() - 1)
    }

    pub fn lane_name(&self, lane: LaneId) -> &str {
        &self.lanes[lane.0]
    }

    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Record a span if recording is enabled.
    pub fn record(
        &mut self,
        lane: LaneId,
        kind: SpanKind,
        label: impl Into<String>,
        start: SimTime,
        end: SimTime,
    ) {
        if !self.enabled {
            return;
        }
        debug_assert!(end >= start, "span ends before it starts");
        self.spans.push(Span {
            lane,
            kind,
            label: label.into(),
            start,
            end,
        });
    }

    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Latest end time over all spans (the chart's right edge).
    pub fn horizon(&self) -> SimTime {
        self.spans
            .iter()
            .map(|s| s.end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Total busy time per lane, optionally restricted to one kind.
    pub fn busy_time(&self, lane: LaneId, kind: Option<SpanKind>) -> SimTime {
        self.spans
            .iter()
            .filter(|s| s.lane == lane && kind.is_none_or(|k| s.kind == k))
            .map(|s| s.end - s.start)
            .sum()
    }

    /// Render the trace as CSV (`lane,kind,label,start_ns,end_ns`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("lane,kind,label,start_ns,end_ns\n");
        for s in &self.spans {
            let _ = writeln!(
                out,
                "{},{},{},{},{}",
                self.lanes[s.lane.0],
                s.kind.name(),
                s.label,
                s.start.as_nanos(),
                s.end.as_nanos()
            );
        }
        out
    }

    /// Build a Gantt view over a time window; `kinds` of `None` keeps all.
    pub fn gantt(&self, window: Option<(SimTime, SimTime)>, kinds: Option<&[SpanKind]>) -> Gantt {
        let (lo, hi) = window.unwrap_or((SimTime::ZERO, self.horizon()));
        let spans = self
            .spans
            .iter()
            .filter(|s| s.end > lo && s.start < hi)
            .filter(|s| kinds.is_none_or(|ks| ks.contains(&s.kind)))
            .cloned()
            .collect();
        Gantt {
            lanes: self.lanes.clone(),
            spans,
            lo,
            hi,
        }
    }
}

/// A renderable Gantt chart extracted from a [`Trace`].
#[derive(Debug, Clone)]
pub struct Gantt {
    lanes: Vec<String>,
    spans: Vec<Span>,
    lo: SimTime,
    hi: SimTime,
}

impl Gantt {
    /// Render an ASCII chart `width` characters wide. Lanes with no activity
    /// in the window are omitted. Later spans overwrite earlier ones where
    /// they overlap in the same cell.
    pub fn render_ascii(&self, width: usize) -> String {
        assert!(width >= 10, "gantt width too small");
        let total = self.hi.saturating_sub(self.lo).as_nanos().max(1);
        let mut rows: Vec<(usize, Vec<char>)> = Vec::new();
        for (i, _) in self.lanes.iter().enumerate() {
            let mut row = vec![' '; width];
            let mut any = false;
            for s in self.spans.iter().filter(|s| s.lane.0 == i) {
                let a = s.start.max(self.lo) - self.lo;
                let b = s.end.min(self.hi) - self.lo;
                let mut c0 = (a.as_nanos() as u128 * width as u128 / total as u128) as usize;
                let mut c1 = (b.as_nanos() as u128 * width as u128 / total as u128) as usize;
                c0 = c0.min(width - 1);
                c1 = c1.min(width);
                if c1 <= c0 {
                    c1 = c0 + 1;
                }
                for c in row.iter_mut().take(c1).skip(c0) {
                    *c = s.kind.glyph();
                }
                any = true;
            }
            if any {
                rows.push((i, row));
            }
        }
        let name_w = rows
            .iter()
            .map(|(i, _)| self.lanes[*i].len())
            .max()
            .unwrap_or(4)
            .max(4);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:name_w$} |{} .. {}|",
            "lane",
            self.lo,
            self.hi,
            name_w = name_w
        );
        for (i, row) in &rows {
            let _ = writeln!(
                out,
                "{:name_w$} |{}|",
                self.lanes[*i],
                row.iter().collect::<String>(),
                name_w = name_w
            );
        }
        let _ = writeln!(
            out,
            "legend: #=kernel >=h2d <=d2h -=cpu ~=network *=steal .=other"
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut tr = Trace::new();
        let lane = tr.add_lane("q0");
        tr.record(lane, SpanKind::Kernel, "k", t(0), t(10));
        assert!(tr.spans().is_empty());
    }

    #[test]
    fn busy_time_sums_per_lane_and_kind() {
        let mut tr = Trace::new();
        tr.set_enabled(true);
        let a = tr.add_lane("a");
        let b = tr.add_lane("b");
        tr.record(a, SpanKind::Kernel, "k1", t(0), t(10));
        tr.record(a, SpanKind::CopyToDevice, "c", t(10), t(15));
        tr.record(b, SpanKind::Kernel, "k2", t(0), t(7));
        assert_eq!(tr.busy_time(a, None), t(15));
        assert_eq!(tr.busy_time(a, Some(SpanKind::Kernel)), t(10));
        assert_eq!(tr.busy_time(b, Some(SpanKind::Kernel)), t(7));
        assert_eq!(tr.horizon(), t(15));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut tr = Trace::new();
        tr.set_enabled(true);
        let a = tr.add_lane("node0.q1");
        tr.record(a, SpanKind::Network, "send", t(3), t(9));
        let csv = tr.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("lane,kind,label,start_ns,end_ns"));
        assert_eq!(lines.next(), Some("node0.q1,network,send,3,9"));
    }

    #[test]
    fn gantt_filters_kinds_and_window() {
        let mut tr = Trace::new();
        tr.set_enabled(true);
        let a = tr.add_lane("a");
        tr.record(a, SpanKind::Kernel, "k", t(0), t(50));
        tr.record(a, SpanKind::CpuTask, "c", t(50), t(100));
        let g = tr.gantt(Some((t(0), t(100))), Some(&[SpanKind::Kernel]));
        assert_eq!(g.spans.len(), 1);
        let g2 = tr.gantt(Some((t(60), t(100))), None);
        assert_eq!(g2.spans.len(), 1, "window excludes the kernel span");
    }

    #[test]
    fn ascii_render_shows_glyphs() {
        let mut tr = Trace::new();
        tr.set_enabled(true);
        let a = tr.add_lane("q0");
        let b = tr.add_lane("q1");
        tr.record(a, SpanKind::Kernel, "k", t(0), t(50));
        tr.record(b, SpanKind::CopyToDevice, "c", t(50), t(100));
        let s = tr.gantt(None, None).render_ascii(40);
        assert!(s.contains('#'));
        assert!(s.contains('>'));
        assert!(s.contains("q0"));
        assert!(s.contains("legend"));
    }

    #[test]
    fn empty_lanes_are_omitted_from_render() {
        let mut tr = Trace::new();
        tr.set_enabled(true);
        let _quiet = tr.add_lane("quiet");
        let busy = tr.add_lane("busy");
        tr.record(busy, SpanKind::Kernel, "k", t(0), t(10));
        let s = tr.gantt(None, None).render_ascii(20);
        assert!(!s.contains("quiet"));
        assert!(s.contains("busy"));
    }

    #[test]
    fn tiny_span_still_renders_one_cell() {
        let mut tr = Trace::new();
        tr.set_enabled(true);
        let a = tr.add_lane("a");
        tr.record(a, SpanKind::Steal, "s", t(500), t(501));
        tr.record(a, SpanKind::Kernel, "k", t(0), t(1_000_000));
        let s = tr.gantt(None, None).render_ascii(50);
        assert!(s.contains('*') || s.contains('#'));
    }
}
