//! Activity tracing and Gantt-chart rendering.
//!
//! The paper's Figs. 16/17 show Gantt charts of a heterogeneous K-means run:
//! lanes ("queues") per activity class per node, with narrow bars for CPU and
//! transfer tasks and wide bars for kernel executions. This module records
//! exactly that: spans `(lane, kind, label, start, end)` plus CSV and ASCII
//! renderers used by the `gantt` bench harness.
//!
//! Spans additionally carry an id and an optional parent id, so the full
//! causal lineage of a job (spawn → steal → node job → device job →
//! h2d/kernel/d2h) forms a tree. The tree drives the Chrome trace-event
//! export ([`crate::obs::chrome`]) and the critical-path analysis
//! ([`crate::obs::critical`]).

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Identifies a trace lane (a row of the Gantt chart).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LaneId(pub usize);

/// Identifies a recorded span. Ids are dense indices into [`Trace::spans`]
/// in recording order, so a parent id is always smaller than its children.
///
/// [`SpanId::NONE`] is the "no span" sentinel returned when recording is
/// disabled; it lets callers thread lineage unconditionally without wrapping
/// every handle in an `Option`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SpanId(pub u32);

impl SpanId {
    /// Sentinel for "no span" (recording disabled, or a root span).
    pub const NONE: SpanId = SpanId(u32::MAX);

    pub fn is_none(self) -> bool {
        self == SpanId::NONE
    }

    /// `Some(self)` unless this is the sentinel.
    pub fn some(self) -> Option<SpanId> {
        if self.is_none() {
            None
        } else {
            Some(self)
        }
    }
}

impl Default for SpanId {
    fn default() -> Self {
        SpanId::NONE
    }
}

/// Classification of an activity span; selects the glyph used in the ASCII
/// rendering and lets the zoomed-out chart (Fig. 17) filter to kernels only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpanKind {
    /// Kernel execution on a many-core device (wide bars in Fig. 16).
    Kernel,
    /// Host-to-device transfer over PCIe.
    CopyToDevice,
    /// Device-to-host transfer over PCIe.
    CopyFromDevice,
    /// CPU-side task (job management, combine, leaf-on-CPU).
    CpuTask,
    /// Network send/receive between cluster nodes.
    Network,
    /// Work-steal protocol activity.
    Steal,
    /// Anything else.
    Other,
}

impl SpanKind {
    /// Glyph used by the ASCII Gantt renderer.
    pub fn glyph(self) -> char {
        match self {
            SpanKind::Kernel => '#',
            SpanKind::CopyToDevice => '>',
            SpanKind::CopyFromDevice => '<',
            SpanKind::CpuTask => '-',
            SpanKind::Network => '~',
            SpanKind::Steal => '*',
            SpanKind::Other => '.',
        }
    }

    /// Short name used in CSV output.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Kernel => "kernel",
            SpanKind::CopyToDevice => "copy_to_device",
            SpanKind::CopyFromDevice => "copy_from_device",
            SpanKind::CpuTask => "cpu",
            SpanKind::Network => "network",
            SpanKind::Steal => "steal",
            SpanKind::Other => "other",
        }
    }

    /// Painting priority for the ASCII renderer: higher z-order paints on top
    /// when spans overlap in a cell. Kernels are the paper's headline signal
    /// (the wide bars of Fig. 16), so they must never be erased by the tiny
    /// steal or transfer spans that share a window.
    pub fn z_order(self) -> u8 {
        match self {
            SpanKind::Other => 0,
            SpanKind::CpuTask => 1,
            SpanKind::Network => 2,
            SpanKind::Steal => 3,
            SpanKind::CopyToDevice => 4,
            SpanKind::CopyFromDevice => 5,
            SpanKind::Kernel => 6,
        }
    }
}

/// One recorded activity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Span {
    pub id: SpanId,
    /// Causal parent (the span whose activity led to this one), if any.
    pub parent: Option<SpanId>,
    pub lane: LaneId,
    pub kind: SpanKind,
    pub label: String,
    pub start: SimTime,
    pub end: SimTime,
}

/// Quote a CSV field per RFC 4180: fields containing the separator, quotes,
/// or line breaks are wrapped in double quotes with embedded quotes doubled.
/// Plain fields pass through untouched, keeping the common output stable.
fn push_csv_field(out: &mut String, field: &str) {
    if field.contains(['"', ',', '\n', '\r']) {
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

/// Recorder for activity spans. Disabled by default (recording costs memory
/// proportional to the number of activities); the Gantt harness enables it.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    lanes: Vec<String>,
    spans: Vec<Span>,
    enabled: bool,
}

impl Trace {
    pub fn new() -> Self {
        Trace::default()
    }

    /// Turn recording on or off. Lane registration works either way.
    #[inline]
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Register a lane (a Gantt row) and get its id.
    pub fn add_lane(&mut self, name: impl Into<String>) -> LaneId {
        self.lanes.push(name.into());
        LaneId(self.lanes.len() - 1)
    }

    pub fn lane_name(&self, lane: LaneId) -> &str {
        &self.lanes[lane.0]
    }

    pub fn lane_names(&self) -> &[String] {
        &self.lanes
    }

    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Record a root span (no causal parent) if recording is enabled.
    /// Returns the new span's id, or [`SpanId::NONE`] when disabled.
    #[inline]
    pub fn record(
        &mut self,
        lane: LaneId,
        kind: SpanKind,
        label: impl Into<String>,
        start: SimTime,
        end: SimTime,
    ) -> SpanId {
        self.record_child(lane, kind, label, start, end, SpanId::NONE)
    }

    /// Record a span with a causal parent. A `parent` of [`SpanId::NONE`]
    /// records a root span, so lineage can be threaded unconditionally.
    #[inline]
    pub fn record_child(
        &mut self,
        lane: LaneId,
        kind: SpanKind,
        label: impl Into<String>,
        start: SimTime,
        end: SimTime,
        parent: SpanId,
    ) -> SpanId {
        if !self.enabled {
            return SpanId::NONE;
        }
        debug_assert!(end >= start, "span ends before it starts");
        let id = SpanId(self.spans.len() as u32);
        self.spans.push(Span {
            id,
            parent: parent.some(),
            lane,
            kind,
            label: label.into(),
            start,
            end,
        });
        id
    }

    /// Extend (or shrink) a recorded span's end time. Used when a span must
    /// be recorded before its duration is known, e.g. a node-level leaf span
    /// that parents the device activity planned inside it. No-op for
    /// [`SpanId::NONE`].
    #[inline]
    pub fn set_end(&mut self, id: SpanId, end: SimTime) {
        if let Some(s) = id.some().and_then(|i| self.spans.get_mut(i.0 as usize)) {
            debug_assert!(end >= s.start, "span ends before it starts");
            s.end = end;
        }
    }

    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Look up a span by id.
    pub fn span(&self, id: SpanId) -> Option<&Span> {
        id.some().and_then(|i| self.spans.get(i.0 as usize))
    }

    /// Latest end time over all spans (the chart's right edge).
    pub fn horizon(&self) -> SimTime {
        self.spans
            .iter()
            .map(|s| s.end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Total busy time per lane, optionally restricted to one kind.
    pub fn busy_time(&self, lane: LaneId, kind: Option<SpanKind>) -> SimTime {
        self.spans
            .iter()
            .filter(|s| s.lane == lane && kind.is_none_or(|k| s.kind == k))
            .map(|s| s.end - s.start)
            .sum()
    }

    /// Check the span tree is well formed: ids are dense and in recording
    /// order, every parent id refers to an earlier span, and no child starts
    /// before its causal parent (children are ordered after their parents in
    /// time, not contained — a stolen job runs long after the divide that
    /// spawned it ended). Returns the first violation found.
    pub fn check_tree(&self) -> Result<(), String> {
        for (i, s) in self.spans.iter().enumerate() {
            if s.id.0 as usize != i {
                return Err(format!("span at index {i} has id {}", s.id.0));
            }
            if s.end < s.start {
                return Err(format!("span {i} ends before it starts"));
            }
            if let Some(p) = s.parent {
                if p.0 as usize >= i {
                    return Err(format!("span {i} has non-causal parent {}", p.0));
                }
                let parent = &self.spans[p.0 as usize];
                if s.start < parent.start {
                    return Err(format!(
                        "span {i} starts at {} before its parent {} at {}",
                        s.start, p.0, parent.start
                    ));
                }
            }
        }
        Ok(())
    }

    /// Render the trace as CSV (`lane,kind,label,start_ns,end_ns`). Fields
    /// are quoted per RFC 4180 when they contain separators or quotes.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("lane,kind,label,start_ns,end_ns\n");
        for s in &self.spans {
            push_csv_field(&mut out, &self.lanes[s.lane.0]);
            out.push(',');
            out.push_str(s.kind.name());
            out.push(',');
            push_csv_field(&mut out, &s.label);
            let _ = writeln!(out, ",{},{}", s.start.as_nanos(), s.end.as_nanos());
        }
        out
    }

    /// Build a Gantt view over a time window; `kinds` of `None` keeps all.
    pub fn gantt(&self, window: Option<(SimTime, SimTime)>, kinds: Option<&[SpanKind]>) -> Gantt {
        let (lo, hi) = window.unwrap_or((SimTime::ZERO, self.horizon()));
        let spans = self
            .spans
            .iter()
            .filter(|s| s.end > lo && s.start < hi)
            .filter(|s| kinds.is_none_or(|ks| ks.contains(&s.kind)))
            .cloned()
            .collect();
        Gantt {
            lanes: self.lanes.clone(),
            spans,
            lo,
            hi,
        }
    }
}

/// A renderable Gantt chart extracted from a [`Trace`].
#[derive(Debug, Clone)]
pub struct Gantt {
    lanes: Vec<String>,
    spans: Vec<Span>,
    lo: SimTime,
    hi: SimTime,
}

impl Gantt {
    /// Render an ASCII chart `width` characters wide. Lanes with no activity
    /// in the window are omitted. Where spans overlap in a cell the one with
    /// the higher [`SpanKind::z_order`] wins (kernels on top); ties keep
    /// recording order.
    pub fn render_ascii(&self, width: usize) -> String {
        assert!(width >= 10, "gantt width too small");
        let total = self.hi.saturating_sub(self.lo).as_nanos().max(1);
        // Paint in ascending z-order so high-priority kinds land last.
        let mut order: Vec<usize> = (0..self.spans.len()).collect();
        order.sort_by_key(|&k| (self.spans[k].kind.z_order(), k));
        let mut rows: Vec<(usize, Vec<char>)> = Vec::new();
        for (i, _) in self.lanes.iter().enumerate() {
            let mut row = vec![' '; width];
            let mut any = false;
            for s in order
                .iter()
                .map(|&k| &self.spans[k])
                .filter(|s| s.lane.0 == i)
            {
                let a = s.start.max(self.lo) - self.lo;
                let b = s.end.min(self.hi) - self.lo;
                let mut c0 = (a.as_nanos() as u128 * width as u128 / total as u128) as usize;
                let c1 = (b.as_nanos() as u128 * width as u128 / total as u128) as usize;
                // The end maps exclusively: a span ending exactly at `hi`
                // yields `c1 == width`, which must fill through the last cell
                // (index `width - 1`), never paint a cell `width`.
                c0 = c0.min(width - 1);
                let c1 = c1.clamp(c0 + 1, width);
                for c in row.iter_mut().take(c1).skip(c0) {
                    *c = s.kind.glyph();
                }
                any = true;
            }
            if any {
                rows.push((i, row));
            }
        }
        let name_w = rows
            .iter()
            .map(|(i, _)| self.lanes[*i].len())
            .max()
            .unwrap_or(4)
            .max(4);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:name_w$} |{} .. {}|",
            "lane",
            self.lo,
            self.hi,
            name_w = name_w
        );
        for (i, row) in &rows {
            let _ = writeln!(
                out,
                "{:name_w$} |{}|",
                self.lanes[*i],
                row.iter().collect::<String>(),
                name_w = name_w
            );
        }
        let _ = writeln!(
            out,
            "legend: #=kernel >=h2d <=d2h -=cpu ~=network *=steal .=other"
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut tr = Trace::new();
        let lane = tr.add_lane("q0");
        let id = tr.record(lane, SpanKind::Kernel, "k", t(0), t(10));
        assert!(tr.spans().is_empty());
        assert!(id.is_none());
        assert!(tr.span(id).is_none());
    }

    #[test]
    fn busy_time_sums_per_lane_and_kind() {
        let mut tr = Trace::new();
        tr.set_enabled(true);
        let a = tr.add_lane("a");
        let b = tr.add_lane("b");
        tr.record(a, SpanKind::Kernel, "k1", t(0), t(10));
        tr.record(a, SpanKind::CopyToDevice, "c", t(10), t(15));
        tr.record(b, SpanKind::Kernel, "k2", t(0), t(7));
        assert_eq!(tr.busy_time(a, None), t(15));
        assert_eq!(tr.busy_time(a, Some(SpanKind::Kernel)), t(10));
        assert_eq!(tr.busy_time(b, Some(SpanKind::Kernel)), t(7));
        assert_eq!(tr.horizon(), t(15));
    }

    #[test]
    fn span_ids_form_a_tree() {
        let mut tr = Trace::new();
        tr.set_enabled(true);
        let a = tr.add_lane("a");
        let root = tr.record(a, SpanKind::CpuTask, "divide", t(0), t(10));
        let child = tr.record_child(a, SpanKind::Steal, "steal", t(10), t(20), root);
        let grand = tr.record_child(a, SpanKind::Kernel, "k", t(25), t(90), child);
        assert_eq!(tr.span(root).unwrap().parent, None);
        assert_eq!(tr.span(child).unwrap().parent, Some(root));
        assert_eq!(tr.span(grand).unwrap().parent, Some(child));
        tr.check_tree().unwrap();
    }

    #[test]
    fn set_end_extends_a_recorded_span() {
        let mut tr = Trace::new();
        tr.set_enabled(true);
        let a = tr.add_lane("a");
        let id = tr.record(a, SpanKind::CpuTask, "leaf", t(5), t(5));
        tr.set_end(id, t(42));
        assert_eq!(tr.span(id).unwrap().end, t(42));
        // NONE is a silent no-op (disabled-trace path).
        tr.set_end(SpanId::NONE, t(99));
    }

    #[test]
    fn check_tree_rejects_forward_parents() {
        let mut tr = Trace::new();
        tr.set_enabled(true);
        let a = tr.add_lane("a");
        tr.record_child(a, SpanKind::CpuTask, "bad", t(0), t(1), SpanId(7));
        assert!(tr.check_tree().is_err());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut tr = Trace::new();
        tr.set_enabled(true);
        let a = tr.add_lane("node0.q1");
        tr.record(a, SpanKind::Network, "send", t(3), t(9));
        let csv = tr.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("lane,kind,label,start_ns,end_ns"));
        assert_eq!(lines.next(), Some("node0.q1,network,send,3,9"));
    }

    #[test]
    fn csv_escapes_labels_per_rfc4180() {
        let mut tr = Trace::new();
        tr.set_enabled(true);
        let a = tr.add_lane("node0.q1");
        tr.record(a, SpanKind::Kernel, "k,means \"v2\"", t(1), t(2));
        let csv = tr.to_csv();
        let row = csv.lines().nth(1).unwrap();
        assert_eq!(row, "node0.q1,kernel,\"k,means \"\"v2\"\"\",1,2");
        // A quoted-field-aware split still yields five fields.
        let mut fields = 1;
        let mut in_quotes = false;
        for c in row.chars() {
            match c {
                '"' => in_quotes = !in_quotes,
                ',' if !in_quotes => fields += 1,
                _ => {}
            }
        }
        assert_eq!(fields, 5);
    }

    #[test]
    fn csv_escapes_newlines_in_lane_names() {
        let mut tr = Trace::new();
        tr.set_enabled(true);
        let a = tr.add_lane("bad\nlane");
        tr.record(a, SpanKind::Other, "x", t(0), t(1));
        let csv = tr.to_csv();
        assert!(csv.contains("\"bad\nlane\",other,x,0,1"));
    }

    #[test]
    fn gantt_filters_kinds_and_window() {
        let mut tr = Trace::new();
        tr.set_enabled(true);
        let a = tr.add_lane("a");
        tr.record(a, SpanKind::Kernel, "k", t(0), t(50));
        tr.record(a, SpanKind::CpuTask, "c", t(50), t(100));
        let g = tr.gantt(Some((t(0), t(100))), Some(&[SpanKind::Kernel]));
        assert_eq!(g.spans.len(), 1);
        let g2 = tr.gantt(Some((t(60), t(100))), None);
        assert_eq!(g2.spans.len(), 1, "window excludes the kernel span");
    }

    #[test]
    fn ascii_render_shows_glyphs() {
        let mut tr = Trace::new();
        tr.set_enabled(true);
        let a = tr.add_lane("q0");
        let b = tr.add_lane("q1");
        tr.record(a, SpanKind::Kernel, "k", t(0), t(50));
        tr.record(b, SpanKind::CopyToDevice, "c", t(50), t(100));
        let s = tr.gantt(None, None).render_ascii(40);
        assert!(s.contains('#'));
        assert!(s.contains('>'));
        assert!(s.contains("q0"));
        assert!(s.contains("legend"));
    }

    #[test]
    fn empty_lanes_are_omitted_from_render() {
        let mut tr = Trace::new();
        tr.set_enabled(true);
        let _quiet = tr.add_lane("quiet");
        let busy = tr.add_lane("busy");
        tr.record(busy, SpanKind::Kernel, "k", t(0), t(10));
        let s = tr.gantt(None, None).render_ascii(20);
        assert!(!s.contains("quiet"));
        assert!(s.contains("busy"));
    }

    #[test]
    fn tiny_span_still_renders_one_cell() {
        let mut tr = Trace::new();
        tr.set_enabled(true);
        let a = tr.add_lane("a");
        tr.record(a, SpanKind::Steal, "s", t(500), t(501));
        tr.record(a, SpanKind::Kernel, "k", t(0), t(1_000_000));
        let s = tr.gantt(None, None).render_ascii(50);
        assert!(s.contains('*') || s.contains('#'));
    }

    #[test]
    fn kernel_paints_over_tiny_steal_regardless_of_order() {
        let mut tr = Trace::new();
        tr.set_enabled(true);
        let a = tr.add_lane("a");
        // The steal is recorded *after* the kernel but must not punch a hole
        // through the kernel bar: Kernel has the highest z-order.
        tr.record(a, SpanKind::Kernel, "k", t(0), t(1000));
        tr.record(a, SpanKind::Steal, "s", t(400), t(401));
        let s = tr.gantt(None, None).render_ascii(20);
        let row = s.lines().nth(1).unwrap();
        assert!(!row.contains('*'), "steal erased part of the kernel: {row}");
        assert_eq!(row.matches('#').count(), 20);
    }

    #[test]
    fn span_ending_exactly_at_window_edge_fills_last_cell() {
        let mut tr = Trace::new();
        tr.set_enabled(true);
        let a = tr.add_lane("a");
        tr.record(a, SpanKind::Kernel, "k", t(0), t(100));
        // Window upper edge coincides with the span end: the bar must reach
        // the final cell (and not attempt to paint one past it).
        let s = tr.gantt(Some((t(0), t(100))), None).render_ascii(10);
        let row = s.lines().nth(1).unwrap();
        let bar: String = row.chars().skip_while(|&c| c != '|').collect();
        assert_eq!(bar, "|##########|");
    }
}
