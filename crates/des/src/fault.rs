//! Declarative fault plans and their deterministic injector.
//!
//! The paper's systems survive real failures: Satin "recovers from nodes
//! that are no longer responding" (Sec. II-A) and Cashmere degrades to the
//! `leafCPU` fallback when a device cannot run a kernel (Sec. II-C). To
//! exercise those paths reproducibly, a [`FaultPlan`] describes *what goes
//! wrong and when* — node crashes, permanent device deaths, transient
//! kernel-launch faults, lossy or degraded links — and a [`FaultInjector`]
//! turns the plan into per-event decisions.
//!
//! Two invariants keep the simulation deterministic:
//!
//! * Randomness comes from named [`StreamRng`] streams derived from the
//!   master seed, so the same `(plan, seed)` pair replays byte-for-byte.
//! * The injector draws from a stream **only when an active fault window
//!   matches the query**. An empty plan therefore consumes no randomness at
//!   all, and a run with an empty plan is byte-identical to a run without
//!   one.
//!
//! Plans are serde-serializable, so a scenario can be stored as JSON (the
//! bench `--faults <plan.json>` flag) and replayed exactly.

use crate::rng::StreamRng;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A whole node stops responding at `at` (absolute virtual time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeCrash {
    pub node: usize,
    pub at: SimTime,
}

/// A node (re)joins the cluster at `at` (absolute virtual time). If the
/// node's first plan event is a join it starts the run offline (a fresh
/// join of a node the cluster knows about but that is not up yet);
/// otherwise the join must follow a crash (a rejoin). A rejoined node comes
/// back empty — no jobs, no steal state — and re-enters steal victim sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeJoin {
    pub node: usize,
    pub at: SimTime,
}

/// One device on a node dies permanently at `at`: in-flight timeline
/// segments abort, resident buffers drain, and the device never comes back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceFailure {
    pub node: usize,
    pub device: usize,
    pub at: SimTime,
}

/// Transient kernel-launch faults: inside `[from, until)` every launch on
/// the matching device fails with `probability` (and is retried by the
/// runtime up to its budget). `device: None` matches every device of the
/// node; `node: None` matches every node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaunchFaultWindow {
    pub node: Option<usize>,
    pub device: Option<usize>,
    pub from: SimTime,
    pub until: SimTime,
    pub probability: f64,
}

/// A degraded link: inside `[from, until)` messages from `src` to `dst`
/// (`None` = any node) are dropped with probability `loss`, and delivered
/// messages suffer an extra `spike` of latency with probability
/// `spike_probability`. The window end is required and must be finite so
/// retransmit loops are guaranteed to terminate once the window closes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFault {
    pub src: Option<usize>,
    pub dst: Option<usize>,
    pub from: SimTime,
    pub until: SimTime,
    pub loss: f64,
    pub spike: SimTime,
    pub spike_probability: f64,
}

impl LinkFault {
    fn matches(&self, src: usize, dst: usize, at: SimTime) -> bool {
        self.src.is_none_or(|s| s == src)
            && self.dst.is_none_or(|d| d == dst)
            && at >= self.from
            && at < self.until
    }
}

/// Everything that goes wrong in one run. Serializable so a scenario can
/// be stored and replayed byte-for-byte.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct FaultPlan {
    pub node_crashes: Vec<NodeCrash>,
    pub node_joins: Vec<NodeJoin>,
    pub device_failures: Vec<DeviceFailure>,
    pub launch_faults: Vec<LaunchFaultWindow>,
    pub link_faults: Vec<LinkFault>,
}

// Hand-written: plan files and scenarios may list only the fault kinds
// they use — absent arrays are empty — and unknown keys are rejected so a
// misspelled fault kind fails loudly instead of injecting nothing.
impl Deserialize for FaultPlan {
    fn from_content(content: &serde::Content) -> Result<FaultPlan, serde::DeError> {
        use serde::{Content, DeError};
        const TY: &str = "FaultPlan";
        const FIELDS: [&str; 5] = [
            "node_crashes",
            "node_joins",
            "device_failures",
            "launch_faults",
            "link_faults",
        ];
        let m = content
            .as_map()
            .ok_or_else(|| DeError::expected("map", TY, content))?;
        for (k, _) in m {
            let Some(k) = k.as_str() else {
                return Err(DeError::custom(format!("non-string key in `{TY}`")));
            };
            if !FIELDS.contains(&k) {
                return Err(DeError::custom(format!("unknown field `{k}` in `{TY}`")));
            }
        }
        fn list<T: Deserialize>(m: &[(Content, Content)], key: &str) -> Result<Vec<T>, DeError> {
            match m.iter().find(|(k, _)| k.as_str() == Some(key)) {
                None => Ok(Vec::new()),
                Some((_, Content::Null)) => Ok(Vec::new()),
                Some((_, v)) => Vec::<T>::from_content(v),
            }
        }
        Ok(FaultPlan {
            node_crashes: list(m, "node_crashes")?,
            node_joins: list(m, "node_joins")?,
            device_failures: list(m, "device_failures")?,
            launch_faults: list(m, "launch_faults")?,
            link_faults: list(m, "link_faults")?,
        })
    }
}

impl FaultPlan {
    /// A fault-free plan (injector never draws randomness).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    pub fn is_empty(&self) -> bool {
        self.node_crashes.is_empty()
            && self.node_joins.is_empty()
            && self.device_failures.is_empty()
            && self.launch_faults.is_empty()
            && self.link_faults.is_empty()
    }

    /// Nodes whose *first* plan event is a join: they start the run offline
    /// (a fresh join) rather than rejoining after a crash. Assumes the plan
    /// validates.
    pub fn initially_offline(&self, nodes: usize) -> Vec<usize> {
        (1..nodes)
            .filter(|&n| {
                let first_join = self
                    .node_joins
                    .iter()
                    .filter(|j| j.node == n)
                    .map(|j| j.at)
                    .min();
                let first_crash = self
                    .node_crashes
                    .iter()
                    .filter(|c| c.node == n)
                    .map(|c| c.at)
                    .min();
                matches!((first_join, first_crash),
                    (Some(j), Some(c)) if j < c)
                    || (first_join.is_some() && first_crash.is_none())
            })
            .collect()
    }

    /// Check the plan against a cluster of `nodes` nodes. Node 0 is the
    /// master and must not crash; windows must be non-empty; probabilities
    /// must be in `[0, 1]`; each node's crash/join events must strictly
    /// alternate in time (a node cannot crash twice without a join in
    /// between, or join while already up unless it is its first event).
    pub fn validate(&self, nodes: usize) -> Result<(), String> {
        for c in &self.node_crashes {
            if c.node == 0 {
                return Err("node 0 (the master) cannot crash".into());
            }
            if c.node >= nodes {
                return Err(format!(
                    "crash of node {} but cluster has {nodes} nodes",
                    c.node
                ));
            }
        }
        for j in &self.node_joins {
            if j.node == 0 {
                return Err("node 0 (the master) cannot leave or join".into());
            }
            if j.node >= nodes {
                return Err(format!(
                    "join of node {} but cluster has {nodes} nodes",
                    j.node
                ));
            }
        }
        // Per-node lifecycle: merge the node's crashes and joins, sort by
        // time, and require strict alternation at distinct times. The first
        // event may be either kind — a leading join means the node starts
        // the run offline.
        for n in 1..nodes {
            let mut events: Vec<(SimTime, bool)> = self
                .node_crashes
                .iter()
                .filter(|c| c.node == n)
                .map(|c| (c.at, true))
                .chain(
                    self.node_joins
                        .iter()
                        .filter(|j| j.node == n)
                        .map(|j| (j.at, false)),
                )
                .collect();
            events.sort_by_key(|&(at, _)| at);
            for w in events.windows(2) {
                let ((t0, crash0), (t1, crash1)) = (w[0], w[1]);
                if t0 == t1 {
                    return Err(format!(
                        "node {n} has two lifecycle events at the same time {t0}"
                    ));
                }
                if crash0 == crash1 {
                    let kind = if crash0 { "crashes" } else { "joins" };
                    return Err(format!(
                        "node {n} has two consecutive {kind} ({t0}, {t1}) — crash and \
                         join events must alternate"
                    ));
                }
            }
        }
        for f in &self.device_failures {
            if f.node >= nodes {
                return Err(format!(
                    "device failure on node {} but cluster has {nodes} nodes",
                    f.node
                ));
            }
        }
        for w in &self.launch_faults {
            if !(0.0..=1.0).contains(&w.probability) {
                return Err(format!(
                    "launch-fault probability {} outside [0, 1]",
                    w.probability
                ));
            }
            if w.until <= w.from {
                return Err(format!(
                    "empty launch-fault window [{}, {})",
                    w.from, w.until
                ));
            }
        }
        for l in &self.link_faults {
            if !(0.0..=1.0).contains(&l.loss) {
                return Err(format!("link loss {} outside [0, 1]", l.loss));
            }
            if !(0.0..=1.0).contains(&l.spike_probability) {
                return Err(format!(
                    "spike probability {} outside [0, 1]",
                    l.spike_probability
                ));
            }
            if l.until <= l.from {
                return Err(format!("empty link-fault window [{}, {})", l.from, l.until));
            }
            if let (Some(s), Some(d)) = (l.src, l.dst) {
                if s == d {
                    return Err(format!("link fault from node {s} to itself"));
                }
            }
            if l.src.is_some_and(|s| s >= nodes) || l.dst.is_some_and(|d| d >= nodes) {
                return Err(format!(
                    "link fault endpoint out of range (cluster has {nodes} nodes)"
                ));
            }
        }
        Ok(())
    }
}

/// What happened to one message on a (possibly faulty) link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageFate {
    /// Delivered after an extra `delay` (zero when no spike applied).
    Delivered { delay: SimTime },
    /// Lost in transit; the sender must time out and recover.
    Dropped,
}

/// Draws per-event fault decisions from a [`FaultPlan`], deterministically.
///
/// Link and launch decisions each have their own named stream, so adding a
/// fault of one kind never perturbs the sequence another kind sees.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    link_rng: StreamRng,
    launch_rng: StreamRng,
    active: bool,
}

impl FaultInjector {
    pub fn new(plan: FaultPlan, master_seed: u64) -> FaultInjector {
        let active = !plan.is_empty();
        FaultInjector {
            link_rng: StreamRng::named(master_seed, "fault.link"),
            launch_rng: StreamRng::named(master_seed, "fault.launch"),
            plan,
            active,
        }
    }

    /// An injector that never injects anything.
    pub fn disabled(master_seed: u64) -> FaultInjector {
        FaultInjector::new(FaultPlan::none(), master_seed)
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Does the plan contain any fault at all? Callers may skip arming
    /// recovery machinery (e.g. steal timeouts) when it does not.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Decide the fate of a message sent `src → dst` at time `at`. Draws
    /// randomness only for link-fault windows that match, so fault-free
    /// links (and empty plans) consume none.
    pub fn message_fate(&mut self, src: usize, dst: usize, at: SimTime) -> MessageFate {
        let mut dropped = false;
        let mut delay = SimTime::ZERO;
        for f in &self.plan.link_faults {
            if !f.matches(src, dst, at) {
                continue;
            }
            // Draw for every matching window even once dropped: the number
            // of draws then depends only on (plan, query), never on earlier
            // outcomes, which keeps replays aligned.
            if f.loss > 0.0 && self.link_rng.unit() < f.loss {
                dropped = true;
            }
            if f.spike_probability > 0.0
                && f.spike > SimTime::ZERO
                && self.link_rng.unit() < f.spike_probability
            {
                delay += f.spike;
            }
        }
        if dropped {
            MessageFate::Dropped
        } else {
            MessageFate::Delivered { delay }
        }
    }

    /// The (earliest) time at which `device` on `node` dies permanently,
    /// if the plan kills it. Pure lookup — no randomness.
    pub fn device_death(&self, node: usize, device: usize) -> Option<SimTime> {
        self.plan
            .device_failures
            .iter()
            .filter(|f| f.node == node && f.device == device)
            .map(|f| f.at)
            .min()
    }

    /// Does a kernel launch on `device` of `node` at time `at` fail
    /// transiently? Draws only for matching windows.
    pub fn launch_fault(&mut self, node: usize, device: usize, at: SimTime) -> bool {
        let mut faulted = false;
        for w in &self.plan.launch_faults {
            let m = w.node.is_none_or(|n| n == node)
                && w.device.is_none_or(|d| d == device)
                && at >= w.from
                && at < w.until;
            if m && w.probability > 0.0 && self.launch_rng.unit() < w.probability {
                faulted = true;
            }
        }
        faulted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn lossy_plan() -> FaultPlan {
        FaultPlan {
            node_crashes: vec![NodeCrash { node: 2, at: ms(5) }],
            node_joins: vec![],
            device_failures: vec![DeviceFailure {
                node: 1,
                device: 0,
                at: ms(3),
            }],
            launch_faults: vec![LaunchFaultWindow {
                node: Some(1),
                device: None,
                from: ms(0),
                until: ms(10),
                probability: 0.5,
            }],
            link_faults: vec![LinkFault {
                src: None,
                dst: Some(0),
                from: ms(1),
                until: ms(9),
                loss: 0.5,
                spike: SimTime::from_micros(300),
                spike_probability: 0.25,
            }],
        }
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let plan = lossy_plan();
        let json = serde_json::to_string_pretty(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
        // And the serialized form itself is stable.
        assert_eq!(json, serde_json::to_string_pretty(&back).unwrap());
    }

    #[test]
    fn empty_plan_draws_nothing() {
        let mut inj = FaultInjector::disabled(42);
        assert!(!inj.is_active());
        for i in 0..100 {
            assert_eq!(
                inj.message_fate(i % 3, (i + 1) % 3, ms(i as u64)),
                MessageFate::Delivered {
                    delay: SimTime::ZERO
                }
            );
            assert!(!inj.launch_fault(0, 0, ms(i as u64)));
            assert_eq!(inj.device_death(0, 0), None);
        }
        // The streams were never advanced: a fresh injector's next draw
        // matches this one's.
        let mut fresh = FaultInjector::disabled(42);
        assert_eq!(
            inj.link_rng.unit().to_bits(),
            fresh.link_rng.unit().to_bits()
        );
        assert_eq!(
            inj.launch_rng.unit().to_bits(),
            fresh.launch_rng.unit().to_bits()
        );
    }

    #[test]
    fn same_plan_same_seed_replays_identically() {
        let decisions = |seed: u64| {
            let mut inj = FaultInjector::new(lossy_plan(), seed);
            let mut out = Vec::new();
            for i in 0..200u64 {
                out.push(inj.message_fate(1, 0, ms(i % 12)));
                out.push(if inj.launch_fault(1, 0, ms(i % 12)) {
                    MessageFate::Dropped
                } else {
                    MessageFate::Delivered {
                        delay: SimTime::ZERO,
                    }
                });
            }
            out
        };
        assert_eq!(decisions(7), decisions(7));
        assert_ne!(decisions(7), decisions(8), "seed must matter");
    }

    #[test]
    fn windows_gate_both_loss_and_launch_faults() {
        let mut inj = FaultInjector::new(lossy_plan(), 1);
        // Outside the window or to a non-matching destination: never lost.
        for i in 0..50 {
            assert_eq!(
                inj.message_fate(0, 1, ms(i % 20)),
                MessageFate::Delivered {
                    delay: SimTime::ZERO
                },
                "dst 1 never matches the plan"
            );
            assert_eq!(
                inj.message_fate(1, 0, ms(20)),
                MessageFate::Delivered {
                    delay: SimTime::ZERO
                },
                "window closed at 9ms"
            );
            assert!(
                !inj.launch_fault(0, 0, ms(5)),
                "launch window is node 1 only"
            );
        }
        // Inside the window losses do occur.
        let lost = (0..200)
            .filter(|_| inj.message_fate(1, 0, ms(4)) == MessageFate::Dropped)
            .count();
        assert!(lost > 50, "~50% loss expected, got {lost}/200");
    }

    #[test]
    fn device_death_is_a_pure_lookup() {
        let inj = FaultInjector::new(lossy_plan(), 1);
        assert_eq!(inj.device_death(1, 0), Some(ms(3)));
        assert_eq!(inj.device_death(1, 1), None);
        assert_eq!(inj.device_death(0, 0), None);
    }

    #[test]
    fn validate_catches_bad_plans() {
        let mut p = FaultPlan::none();
        assert!(p.validate(4).is_ok());
        p.node_crashes.push(NodeCrash { node: 0, at: ms(1) });
        assert!(p.validate(4).is_err(), "master crash rejected");
        p.node_crashes[0].node = 9;
        assert!(p.validate(4).is_err(), "out-of-range node rejected");
        p.node_crashes[0].node = 2;
        assert!(p.validate(4).is_ok());
        p.link_faults.push(LinkFault {
            src: Some(1),
            dst: Some(1),
            from: ms(0),
            until: ms(1),
            loss: 0.1,
            spike: SimTime::ZERO,
            spike_probability: 0.0,
        });
        assert!(p.validate(4).is_err(), "self-link rejected");
        p.link_faults[0].dst = Some(0);
        p.link_faults[0].loss = 1.5;
        assert!(p.validate(4).is_err(), "loss > 1 rejected");
        p.link_faults[0].loss = 0.5;
        p.link_faults[0].until = ms(0);
        assert!(p.validate(4).is_err(), "empty window rejected");
    }

    #[test]
    fn join_lifecycle_must_alternate() {
        let mut p = FaultPlan::none();
        p.node_joins.push(NodeJoin { node: 0, at: ms(1) });
        assert!(p.validate(4).is_err(), "master join rejected");
        p.node_joins[0].node = 9;
        assert!(p.validate(4).is_err(), "out-of-range join rejected");
        // A leading join (node starts offline) is fine on its own.
        p.node_joins[0].node = 2;
        assert!(p.validate(4).is_ok());
        assert_eq!(p.initially_offline(4), vec![2]);
        // crash @5 then join @1 means the join leads: still offline start.
        p.node_crashes.push(NodeCrash { node: 2, at: ms(5) });
        assert!(p.validate(4).is_ok());
        assert_eq!(p.initially_offline(4), vec![2]);
        // crash @5 then join @9: a rejoin; node starts alive.
        p.node_joins[0].at = ms(9);
        assert!(p.validate(4).is_ok());
        assert!(p.initially_offline(4).is_empty());
        // Two crashes with no join in between: rejected.
        p.node_crashes.push(NodeCrash { node: 2, at: ms(7) });
        assert!(p.validate(4).is_err(), "consecutive crashes rejected");
        // Crash and join at the same instant: rejected.
        p.node_crashes[1].at = ms(9);
        assert!(p.validate(4).is_err(), "simultaneous events rejected");
        // crash @5, join @9, crash @12, join @20: a full rejoin cycle.
        p.node_crashes[1].at = ms(12);
        p.node_joins.push(NodeJoin {
            node: 2,
            at: ms(20),
        });
        assert!(p.validate(4).is_ok());
    }

    #[test]
    fn join_plan_roundtrips_and_absent_field_is_empty() {
        let mut p = lossy_plan();
        p.node_joins.push(NodeJoin { node: 2, at: ms(8) });
        let json = serde_json::to_string_pretty(&p).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
        // Plans written before `node_joins` existed still parse.
        let legacy: FaultPlan =
            serde_json::from_str(r#"{ "node_crashes": [ { "node": 1, "at": 1000 } ] }"#).unwrap();
        assert!(legacy.node_joins.is_empty());
        assert!(!legacy.is_empty());
    }
}
