//! The paper's programming-model surface, for single-device use.
//!
//! Fig. 4 of the paper shows how a leaf computation calls an MCL kernel:
//!
//! ```text
//! leaf(a, b)
//!   try {
//!     Kernel kernel = Cashmere.getKernel()
//!     KernelLaunch kl = kernel.createLaunch()
//!     MCL.launch(kl, a, b)
//!   } catch (exception) {
//!     leafCPU(a, b)
//!   }
//! ```
//!
//! This module provides the same flow in Rust (`Result` instead of
//! exceptions): [`Cashmere::get_kernel`] → [`KernelHandle::create_launch`]
//! → [`KernelLaunch::launch`]. "The MCL front-end makes sure that all
//! necessary data is copied to the many-core device, it selects the
//! appropriate kernel(s) for the devices available on the node, executes
//! the kernel, and copies the data back" — the launch here does exactly
//! that against a simulated device, returning the computed arguments, the
//! execution statistics and the modelled timing.
//!
//! The full cluster runtime (`enableManyCore`, stealing, balancing) lives
//! in [`crate::runtime`]; this facade is the entry point for
//! single-kernel experimentation, calibration and teaching.

use crate::registry::KernelRegistry;
use cashmere_des::SimTime;
use cashmere_devsim::{ExecMode, KernelRun, SimDevice};
use cashmere_mcl::value::ArgValue;
use std::fmt;

/// Errors surfaced by the facade — the paper's "exception" that triggers
/// the `leafCPU` fallback.
#[derive(Debug, Clone, PartialEq)]
pub enum LaunchError {
    /// No version of the kernel applies to this device; carries the
    /// "add a hardware description" suggestion.
    NoKernel(String),
    /// The kernel failed at run time (bad arguments, out-of-bounds, …).
    Runtime(String),
    /// Unknown device name.
    NoDevice(String),
}

impl fmt::Display for LaunchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaunchError::NoKernel(s) => write!(f, "no applicable kernel: {s}"),
            LaunchError::Runtime(s) => write!(f, "kernel execution failed: {s}"),
            LaunchError::NoDevice(s) => write!(f, "no such device: {s}"),
        }
    }
}

impl std::error::Error for LaunchError {}

/// A node-local Cashmere context: a kernel registry plus one device.
pub struct Cashmere {
    registry: KernelRegistry,
    device: SimDevice,
}

impl fmt::Debug for Cashmere {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cashmere")
            .field("device", &self.device.level_name)
            .field("kernels", &self.registry.kernel_names())
            .finish()
    }
}

impl Cashmere {
    /// Build a context for the device named `device` (a leaf level of the
    /// registry's hierarchy).
    pub fn new(registry: KernelRegistry, device: &str) -> Result<Cashmere, LaunchError> {
        let dev =
            SimDevice::by_name(registry.hierarchy(), device).map_err(LaunchError::NoDevice)?;
        Ok(Cashmere {
            registry,
            device: dev,
        })
    }

    /// The device this context runs on.
    pub fn device(&self) -> &SimDevice {
        &self.device
    }

    /// `Cashmere.getKernel("name")` — resolves the most specific version
    /// for this context's device. "If there are more kernels, the
    /// `Cashmere.getKernel()` function should have a string parameter that
    /// identifies the kernel to be loaded."
    pub fn get_kernel(&self, name: &str) -> Result<KernelHandle<'_>, LaunchError> {
        if self.registry.select(name, self.device.level).is_none() {
            let mut sugg = self
                .registry
                .coverage_suggestions(name, &[self.device.level]);
            return Err(LaunchError::NoKernel(
                sugg.pop()
                    .unwrap_or_else(|| format!("kernel `{name}` is not registered")),
            ));
        }
        Ok(KernelHandle {
            cashmere: self,
            name: name.to_string(),
        })
    }
}

/// The paper's `Kernel` object.
#[derive(Debug)]
pub struct KernelHandle<'a> {
    cashmere: &'a Cashmere,
    name: String,
}

impl<'a> KernelHandle<'a> {
    /// Which hardware-description level was selected for this device.
    pub fn selected_level(&self) -> &str {
        let ck = self
            .cashmere
            .registry
            .select(&self.name, self.cashmere.device.level)
            .expect("checked at get_kernel");
        self.cashmere.registry.hierarchy().name(ck.level)
    }

    /// `kernel.createLaunch()`.
    pub fn create_launch(&self) -> KernelLaunch<'a> {
        KernelLaunch {
            cashmere: self.cashmere,
            name: self.name.clone(),
        }
    }
}

/// The paper's `KernelLaunch` object.
#[derive(Debug)]
pub struct KernelLaunch<'a> {
    cashmere: &'a Cashmere,
    name: String,
}

/// Outcome of `MCL.launch(...)`: computed arguments, statistics, timing.
#[derive(Debug)]
pub struct LaunchResult {
    pub args: Vec<ArgValue>,
    pub stats: cashmere_mcl::KernelStats,
    /// Modelled kernel execution time on the device.
    pub kernel_time: SimTime,
    /// Modelled host→device + device→host transfer time for the arguments.
    pub transfer_time: SimTime,
}

impl KernelLaunch<'_> {
    /// `MCL.launch(kl, a, b, …)`: copy the data over, run the most
    /// specific kernel version, copy the results back.
    pub fn launch(self, args: Vec<ArgValue>) -> Result<LaunchResult, LaunchError> {
        let bytes: u64 = args.iter().map(ArgValue::device_bytes).sum();
        let ck = self
            .cashmere
            .registry
            .select(&self.name, self.cashmere.device.level)
            .expect("checked at get_kernel");
        let run: KernelRun = self
            .cashmere
            .device
            .run_kernel(self.cashmere.registry.hierarchy(), ck, args, ExecMode::Full)
            .map_err(|e| LaunchError::Runtime(e.to_string()))?;
        // Round trip over PCIe: everything in, mutated arrays back. (The
        // cluster runtime tracks exact in/out sets; the facade is
        // conservative.)
        let transfer_time = self.cashmere.device.transfer_time(bytes) * 2;
        Ok(LaunchResult {
            args: run.args,
            stats: run.stats,
            kernel_time: run.time,
            transfer_time,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cashmere_hwdesc::standard_hierarchy;
    use cashmere_mcl::value::ArrayArg;

    fn registry() -> KernelRegistry {
        let mut r = KernelRegistry::new(standard_hierarchy());
        r.register(
            "perfect void scale2(int n, float[n] a) {
  foreach (int i in n threads) { a[i] = a[i] * 2.0; }
}",
        )
        .unwrap();
        r.register(
            "gpu void scale2(int n, float[n] a) {
  foreach (int b in (n + 255) / 256 blocks) {
    foreach (int t in 256 threads) {
      int i = b * 256 + t;
      if (i < n) { a[i] = a[i] * 2.0; }
    }
  }
}",
        )
        .unwrap();
        r
    }

    #[test]
    fn fig4_flow_computes() {
        // The paper's leaf(a, b) pattern, in Rust.
        let cashmere = Cashmere::new(registry(), "gtx480").unwrap();
        let kernel = cashmere.get_kernel("scale2").unwrap();
        assert_eq!(kernel.selected_level(), "gpu", "most specific version");
        let kl = kernel.create_launch();
        let a = ArrayArg::float(&[100], (0..100).map(f64::from).collect());
        let result = kl
            .launch(vec![ArgValue::Int(100), ArgValue::Array(a)])
            .unwrap();
        let out = result.args[1].clone().array();
        assert_eq!(out.as_f64()[21], 42.0);
        assert!(result.kernel_time > SimTime::ZERO);
        assert!(result.transfer_time > SimTime::ZERO);
    }

    #[test]
    fn phi_gets_the_perfect_version() {
        let cashmere = Cashmere::new(registry(), "xeon_phi").unwrap();
        let kernel = cashmere.get_kernel("scale2").unwrap();
        assert_eq!(kernel.selected_level(), "perfect");
    }

    #[test]
    fn missing_kernel_is_the_catchable_exception() {
        let cashmere = Cashmere::new(registry(), "gtx480").unwrap();
        let err = cashmere.get_kernel("nonexistent").unwrap_err();
        assert!(matches!(err, LaunchError::NoKernel(_)));
        // The paper's fallback: the caller runs leafCPU instead.
    }

    #[test]
    fn runtime_failure_is_catchable_too() {
        let cashmere = Cashmere::new(registry(), "gtx480").unwrap();
        let kl = cashmere.get_kernel("scale2").unwrap().create_launch();
        // Wrong argument count → runtime error, not panic.
        let err = kl.launch(vec![ArgValue::Int(100)]).unwrap_err();
        assert!(matches!(err, LaunchError::Runtime(_)), "{err}");
    }

    #[test]
    fn unknown_device_rejected() {
        let err = Cashmere::new(registry(), "rtx9090").unwrap_err();
        assert!(matches!(err, LaunchError::NoDevice(_)));
    }

    #[test]
    fn multiple_launches_reuse_the_kernel() {
        // "multiple kernel-launches: it is possible to launch the kernel
        // multiple times in succession."
        let cashmere = Cashmere::new(registry(), "k20").unwrap();
        let kernel = cashmere.get_kernel("scale2").unwrap();
        let mut a = ArrayArg::float(&[8], vec![1.0; 8]);
        for _ in 0..3 {
            let r = kernel
                .create_launch()
                .launch(vec![ArgValue::Int(8), ArgValue::Array(a)])
                .unwrap();
            a = r.args[1].clone().array();
        }
        assert_eq!(a.as_f64()[0], 8.0, "2^3 after three launches");
    }
}
