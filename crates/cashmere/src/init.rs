//! Initialization phase (paper Sec. III-B, "On initialization").
//!
//! Cashmere assigns one node to be the master; the master broadcasts the
//! run-time information to each slave, every node detects its devices and
//! compiles the most specific kernel version for each of them. If a node
//! carries a device that no hardware description / kernel version covers,
//! Cashmere *suggests adding a hardware description* rather than failing
//! silently.
//!
//! The simulated cost model: one broadcast of the run-time information and,
//! per node, sequential compilation of each (kernel, device) pair — nodes
//! compile in parallel with each other, so the cluster-wide cost is the
//! slowest node's.

use crate::registry::KernelRegistry;
use crate::spec::ClusterSpec;
use cashmere_des::SimTime;
use cashmere_netsim::NetConfig;

/// Per-kernel-per-device compile time (OpenCL JIT is ~100–300 ms).
pub const COMPILE_TIME: SimTime = SimTime::from_millis(150);
/// Serialized run-time information broadcast by the master.
pub const RUNTIME_INFO_BYTES: u64 = 1 << 20;

/// Result of the initialization phase.
#[derive(Debug, Clone)]
pub struct InitReport {
    /// Virtual time the initialization takes.
    pub duration: SimTime,
    /// Kernels compiled across the cluster.
    pub kernels_compiled: usize,
    /// "Add a hardware description" suggestions (uncovered devices).
    pub suggestions: Vec<String>,
}

/// Model the initialization phase for a cluster of `spec` running the
/// kernels in `registry`.
pub fn initialize(registry: &KernelRegistry, spec: &ClusterSpec, net: &NetConfig) -> InitReport {
    let h = registry.hierarchy();
    let mut suggestions = Vec::new();
    let mut kernels_compiled = 0usize;
    let mut slowest_node = SimTime::ZERO;

    for devices in &spec.node_devices {
        let mut node_time = SimTime::ZERO;
        for dev_name in devices {
            let Some(level) = h.id(dev_name) else {
                suggestions.push(format!(
                    "device `{dev_name}` is not in the hardware-description \
                     hierarchy: add a hardware description for it"
                ));
                continue;
            };
            for kernel in registry.kernel_names() {
                if registry.select(kernel, level).is_some() {
                    kernels_compiled += 1;
                    node_time += COMPILE_TIME;
                } else {
                    suggestions.push(format!(
                        "device `{dev_name}` has no applicable version of kernel \
                         `{kernel}`: add a hardware description or a \
                         higher-level kernel version"
                    ));
                }
            }
        }
        slowest_node = slowest_node.max(node_time);
    }

    // Master → slaves broadcast of the run-time information (sequential
    // sends on the master's NIC).
    let slaves = spec.nodes().saturating_sub(1) as u64;
    let broadcast =
        SimTime::from_secs_f64(net.wire_time(RUNTIME_INFO_BYTES).as_secs_f64() * slaves as f64);

    InitReport {
        duration: broadcast + slowest_node,
        kernels_compiled,
        suggestions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cashmere_hwdesc::standard_hierarchy;

    fn registry_with_axpy() -> KernelRegistry {
        let mut r = KernelRegistry::new(standard_hierarchy());
        r.register(
            "perfect void axpy(int n, float[n] y, float[n] x) {
  foreach (int i in n threads) { y[i] += 2.0 * x[i]; }
}",
        )
        .unwrap();
        r
    }

    #[test]
    fn all_devices_covered_by_a_perfect_kernel() {
        let r = registry_with_axpy();
        let spec = ClusterSpec::paper_hetero_nbody();
        let rep = initialize(&r, &spec, &NetConfig::qdr_infiniband());
        assert!(rep.suggestions.is_empty(), "{:?}", rep.suggestions);
        // 22 nodes, 24 devices, 1 kernel each.
        assert_eq!(rep.kernels_compiled, 24);
        assert!(rep.duration >= COMPILE_TIME);
    }

    #[test]
    fn uncovered_device_yields_suggestion() {
        let mut r = KernelRegistry::new(standard_hierarchy());
        r.register(
            "amd void only_amd(int n, float[n] a) {
  foreach (int b in (n + 255) / 256 blocks) {
    foreach (int t in 256 threads) {
      int i = b * 256 + t;
      if (i < n) { a[i] = 0.0; }
    }
  }
}",
        )
        .unwrap();
        let spec = ClusterSpec::homogeneous(2, "gtx480");
        let rep = initialize(&r, &spec, &NetConfig::qdr_infiniband());
        assert_eq!(rep.kernels_compiled, 0);
        assert_eq!(rep.suggestions.len(), 2);
        assert!(rep.suggestions[0].contains("add a hardware description"));
    }

    #[test]
    fn unknown_device_name_yields_suggestion() {
        let r = registry_with_axpy();
        let spec = ClusterSpec {
            node_devices: vec![vec!["rtx5090".to_string()]],
        };
        let rep = initialize(&r, &spec, &NetConfig::qdr_infiniband());
        assert_eq!(rep.suggestions.len(), 1);
        assert!(rep.suggestions[0].contains("not in the hardware-description"));
    }

    #[test]
    fn phi_node_compiles_two_device_kernels() {
        let r = registry_with_axpy();
        let spec = ClusterSpec {
            node_devices: vec![vec!["k20".to_string(), "xeon_phi".to_string()]],
        };
        let rep = initialize(&r, &spec, &NetConfig::qdr_infiniband());
        assert_eq!(rep.kernels_compiled, 2);
        assert_eq!(rep.duration, COMPILE_TIME * 2, "single node, no broadcast");
    }
}
