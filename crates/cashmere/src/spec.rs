//! Cluster composition: which devices each node carries.
//!
//! The paper's heterogeneous experiments (Table III) use two configurations
//! drawn from the DAS-4 inventory; both are provided here, along with the
//! homogeneous GTX480 partitions used for the scalability studies
//! (Figs. 7–14).

use serde::{Deserialize, Serialize};

/// Devices per node, by hardware-description level name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterSpec {
    pub node_devices: Vec<Vec<String>>,
}

impl ClusterSpec {
    /// `nodes` identical nodes carrying one `device` each.
    pub fn homogeneous(nodes: usize, device: &str) -> ClusterSpec {
        ClusterSpec {
            node_devices: vec![vec![device.to_string()]; nodes],
        }
    }

    /// Table III configuration for raytracer and matmul: 15 nodes —
    /// 10 GTX480, 2 C2050, 1 GTX680, 1 Titan, 1 HD7970.
    pub fn paper_hetero_small() -> ClusterSpec {
        let mut nodes = Vec::new();
        for _ in 0..10 {
            nodes.push(vec!["gtx480".to_string()]);
        }
        for _ in 0..2 {
            nodes.push(vec!["c2050".to_string()]);
        }
        nodes.push(vec!["gtx680".to_string()]);
        nodes.push(vec!["titan".to_string()]);
        nodes.push(vec!["hd7970".to_string()]);
        ClusterSpec {
            node_devices: nodes,
        }
    }

    /// Table III configuration for K-means: the small configuration plus
    /// 7 K20 and 1 Xeon Phi. On DAS-4 the Phis are fitted in K20 nodes, so
    /// one node carries both a K20 and a Phi.
    pub fn paper_hetero_kmeans() -> ClusterSpec {
        let mut spec = ClusterSpec::paper_hetero_small();
        for _ in 0..6 {
            spec.node_devices.push(vec!["k20".to_string()]);
        }
        spec.node_devices
            .push(vec!["k20".to_string(), "xeon_phi".to_string()]);
        spec
    }

    /// Table III configuration for N-body: the small configuration plus
    /// 7 K20 and 2 Xeon Phi (two K20 nodes carry a Phi).
    pub fn paper_hetero_nbody() -> ClusterSpec {
        let mut spec = ClusterSpec::paper_hetero_small();
        for _ in 0..5 {
            spec.node_devices.push(vec!["k20".to_string()]);
        }
        for _ in 0..2 {
            spec.node_devices
                .push(vec!["k20".to_string(), "xeon_phi".to_string()]);
        }
        spec
    }

    pub fn nodes(&self) -> usize {
        self.node_devices.len()
    }

    /// Flat count of devices by level name.
    pub fn device_count(&self, name: &str) -> usize {
        self.node_devices
            .iter()
            .flat_map(|d| d.iter())
            .filter(|n| *n == name)
            .count()
    }

    /// All distinct device level names in the spec.
    pub fn distinct_devices(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .node_devices
            .iter()
            .flat_map(|d| d.iter().cloned())
            .collect();
        v.sort();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_spec() {
        let s = ClusterSpec::homogeneous(16, "gtx480");
        assert_eq!(s.nodes(), 16);
        assert_eq!(s.device_count("gtx480"), 16);
        assert_eq!(s.distinct_devices(), vec!["gtx480"]);
    }

    #[test]
    fn paper_small_matches_table3() {
        let s = ClusterSpec::paper_hetero_small();
        assert_eq!(s.nodes(), 15);
        assert_eq!(s.device_count("gtx480"), 10);
        assert_eq!(s.device_count("c2050"), 2);
        assert_eq!(s.device_count("gtx680"), 1);
        assert_eq!(s.device_count("titan"), 1);
        assert_eq!(s.device_count("hd7970"), 1);
    }

    #[test]
    fn paper_kmeans_adds_k20s_and_one_phi() {
        let s = ClusterSpec::paper_hetero_kmeans();
        assert_eq!(s.device_count("k20"), 7);
        assert_eq!(s.device_count("xeon_phi"), 1);
        assert_eq!(s.nodes(), 22, "the Phi shares a K20 node");
    }

    #[test]
    fn paper_nbody_has_two_phis() {
        let s = ClusterSpec::paper_hetero_nbody();
        assert_eq!(s.device_count("k20"), 7);
        assert_eq!(s.device_count("xeon_phi"), 2);
        assert_eq!(s.nodes(), 22);
    }
}
