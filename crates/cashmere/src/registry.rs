//! The kernel registry: multiple MCPL versions per kernel, most-specific
//! selection per device, and a statistics cache.
//!
//! Applying stepwise refinement leaves the programmer with several files
//! holding versions of the same kernel at different levels (paper
//! Sec. III-A: `perfect`, `gpu`, `amd`, `hd7970`, …). The registry compiles
//! them all, and for each physical device "automatically chooses the most
//! specific kernel version".
//!
//! Because leaf jobs in a divide-and-conquer application typically have the
//! same size (the paper's own observation in Sec. III-B), the registry also
//! caches interpreter statistics keyed by kernel version, launch geometry
//! and argument shape, so the cost of sampled interpretation is paid once
//! per shape instead of once per job.

use cashmere_des::obs::prof;
use cashmere_hwdesc::{Hierarchy, LevelId};
use cashmere_mcl::interp::Sampling;
use cashmere_mcl::launch::{LaunchConfig, LaunchKey, LaunchMemo};
use cashmere_mcl::stats::KernelStats;
use cashmere_mcl::value::ArgValue;
use cashmere_mcl::{compile, CheckError, CheckedKernel};
use std::collections::HashMap;

/// One kernel's versions, ordered by registration.
#[derive(Debug, Default)]
struct KernelVersions {
    versions: Vec<CheckedKernel>,
}

/// Cache key: kernel identity + geometry + argument shape (the memoization
/// key defined by the MCL launch layer).
pub type StatsKey = LaunchKey;

/// Shape signature of an argument list (scalars + array dims).
pub fn arg_shape(args: &[ArgValue]) -> Vec<i64> {
    LaunchKey::arg_shape(args)
}

/// Registry of compiled kernels plus the hardware hierarchy they target.
pub struct KernelRegistry {
    hierarchy: Hierarchy,
    kernels: HashMap<String, KernelVersions>,
    memo: LaunchMemo,
    pub default_sampling: Sampling,
}

impl KernelRegistry {
    pub fn new(hierarchy: Hierarchy) -> KernelRegistry {
        KernelRegistry {
            hierarchy,
            kernels: HashMap::new(),
            memo: LaunchMemo::new(),
            default_sampling: Sampling::default(),
        }
    }

    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Compile and register one kernel version. The kernel's name comes
    /// from the source; its level from the leading keyword. Registering two
    /// versions of the same kernel at the same level is an error.
    pub fn register(&mut self, src: &str) -> Result<(String, LevelId), CheckError> {
        let _prof = prof::scope("mcl::compile");
        let ck = compile(src, &self.hierarchy)?;
        let name = ck.kernel.name.clone();
        let level = ck.level;
        let entry = self.kernels.entry(name.clone()).or_default();
        if entry.versions.iter().any(|v| v.level == level) {
            return Err(CheckError {
                line: 1,
                message: format!(
                    "kernel `{name}` already has a version at level `{}`",
                    self.hierarchy.name(level)
                ),
            });
        }
        entry.versions.push(ck);
        Ok((name, level))
    }

    /// Kernel names registered.
    pub fn kernel_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.kernels.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// Levels a kernel has versions for.
    pub fn versions_of(&self, kernel: &str) -> Vec<LevelId> {
        self.kernels
            .get(kernel)
            .map(|k| k.versions.iter().map(|v| v.level).collect())
            .unwrap_or_default()
    }

    /// Most-specific version of `kernel` applicable to `device`
    /// (paper Sec. III-A). `None` when no version applies — the caller
    /// falls back to the CPU leaf.
    pub fn select(&self, kernel: &str, device: LevelId) -> Option<&CheckedKernel> {
        let versions = self.kernels.get(kernel)?;
        let levels: Vec<LevelId> = versions.versions.iter().map(|v| v.level).collect();
        let best = self.hierarchy.most_specific(&levels, device)?;
        versions.versions.iter().find(|v| v.level == best)
    }

    /// Paper Sec. III-B: nodes whose devices have no applicable hardware
    /// description (or no kernel version) get a suggestion to add one.
    pub fn coverage_suggestions(&self, kernel: &str, devices: &[LevelId]) -> Vec<String> {
        let mut out = Vec::new();
        for &d in devices {
            if self.select(kernel, d).is_none() {
                out.push(format!(
                    "device `{}` has no applicable version of kernel `{kernel}`: \
                     add a hardware description or a higher-level kernel version",
                    self.hierarchy.name(d)
                ));
            }
        }
        out
    }

    /// Launch geometry for `kernel` on `device`.
    pub fn launch_config(&self, kernel: &str, device: LevelId) -> Option<LaunchConfig> {
        let ck = self.select(kernel, device)?;
        Some(LaunchConfig::for_device(ck, &self.hierarchy, device))
    }

    /// Look up memoized statistics, counting the hit or miss.
    pub fn cached_stats(&mut self, key: &StatsKey) -> Option<KernelStats> {
        let _prof = prof::scope("mcl::memo");
        self.memo.lookup(key)
    }

    /// Insert statistics into the memo table.
    pub fn cache_stats(&mut self, key: StatsKey, stats: KernelStats) {
        self.memo.insert(key, stats);
    }

    pub fn cache_len(&self) -> usize {
        self.memo.len()
    }

    /// Memoized sampled launches served from the cache so far.
    pub fn cache_hits(&self) -> u64 {
        self.memo.hits()
    }

    /// Sampled launches that had to be interpreted (then memoized).
    pub fn cache_misses(&self) -> u64 {
        self.memo.misses()
    }

    /// The memo table itself (deterministic iteration).
    pub fn memo(&self) -> &LaunchMemo {
        &self.memo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cashmere_hwdesc::{standard_hierarchy, DeviceKind};
    use cashmere_mcl::value::ArrayArg;
    use cashmere_mcl::ElemTy;

    const PERFECT: &str = "perfect void axpy(int n, float[n] y, float[n] x) {
  foreach (int i in n threads) { y[i] += 2.0 * x[i]; }
}";
    const GPU: &str = "gpu void axpy(int n, float[n] y, float[n] x) {
  foreach (int b in (n + 255) / 256 blocks) {
    foreach (int t in 256 threads) {
      int i = b * 256 + t;
      if (i < n) { y[i] += 2.0 * x[i]; }
    }
  }
}";

    fn registry() -> KernelRegistry {
        let mut r = KernelRegistry::new(standard_hierarchy());
        r.register(PERFECT).unwrap();
        r.register(GPU).unwrap();
        r
    }

    #[test]
    fn registration_and_selection() {
        let r = registry();
        let h = r.hierarchy();
        assert_eq!(r.kernel_names(), vec!["axpy"]);
        assert_eq!(r.versions_of("axpy").len(), 2);
        // GPUs get the gpu version, the Phi falls back to perfect.
        let gtx = r.select("axpy", DeviceKind::Gtx480.level(h)).unwrap();
        assert_eq!(h.name(gtx.level), "gpu");
        let phi = r.select("axpy", DeviceKind::XeonPhi.level(h)).unwrap();
        assert_eq!(h.name(phi.level), "perfect");
        assert!(r
            .select("nonexistent", DeviceKind::Gtx480.level(h))
            .is_none());
    }

    #[test]
    fn duplicate_level_rejected() {
        let mut r = registry();
        let err = r.register(PERFECT).unwrap_err();
        assert!(err.message.contains("already has a version"));
    }

    #[test]
    fn coverage_suggestions_for_uncovered_device() {
        let mut r = KernelRegistry::new(standard_hierarchy());
        // Only an hd7970-specific version: NVIDIA devices are uncovered.
        r.register(
            "hd7970 void only_amd(int n, float[n] a) {
  foreach (int b in (n + 255) / 256 blocks) {
    foreach (int t in 256 threads) {
      int i = b * 256 + t;
      if (i < n) { a[i] = 0.0; }
    }
  }
}",
        )
        .unwrap();
        let h = standard_hierarchy();
        let devices = vec![DeviceKind::Gtx480.level(&h), DeviceKind::Hd7970.level(&h)];
        let sugg = r.coverage_suggestions("only_amd", &devices);
        assert_eq!(sugg.len(), 1);
        assert!(sugg[0].contains("gtx480"));
    }

    #[test]
    fn launch_config_respects_version_choice() {
        let r = registry();
        let h = standard_hierarchy();
        // gpu version pins 256 threads.
        let cfg = r
            .launch_config("axpy", DeviceKind::Gtx480.level(&h))
            .unwrap();
        assert_eq!(cfg.group_size, 256);
        // perfect version on phi: class default.
        let cfg = r
            .launch_config("axpy", DeviceKind::XeonPhi.level(&h))
            .unwrap();
        assert_eq!(cfg.warp_width, 16);
    }

    #[test]
    fn arg_shape_distinguishes_sizes_not_contents() {
        let a1 = vec![
            ArgValue::Int(8),
            ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[8])),
        ];
        let a2 = vec![
            ArgValue::Int(8),
            ArgValue::Array(ArrayArg::float(&[8], vec![1.0; 8])),
        ];
        let a3 = vec![
            ArgValue::Int(16),
            ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[16])),
        ];
        assert_eq!(arg_shape(&a1), arg_shape(&a2), "contents don't matter");
        assert_ne!(arg_shape(&a1), arg_shape(&a3), "sizes do");
    }

    #[test]
    fn stats_cache_roundtrip() {
        let mut r = registry();
        let key = StatsKey {
            kernel: "axpy".into(),
            level: r.hierarchy().id("gpu").unwrap(),
            group_size: 256,
            warp_width: 32,
            shape: vec![1024],
        };
        assert!(r.cached_stats(&key).is_none());
        r.cache_stats(key.clone(), KernelStats::default());
        assert!(r.cached_stats(&key).is_some());
        assert_eq!(r.cache_len(), 1);
        assert_eq!((r.cache_hits(), r.cache_misses()), (1, 1));
    }
}
