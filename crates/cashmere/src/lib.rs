//! # cashmere — heterogeneous many-core cluster computing
//!
//! Reproduction of *Cashmere: Heterogeneous Many-Core Computing*
//! (Hijma, Jacobs, van Nieuwpoort, Bal — IPDPS 2015): the tight integration
//! of **Satin** (divide-and-conquer with cluster-wide random work stealing,
//! [`cashmere_satin`]) and **MCL** (Many-Core Levels kernels with
//! stepwise-refinement optimization, [`cashmere_mcl`]).
//!
//! What this crate adds on top of the two systems — exactly the paper's
//! contributions:
//!
//! * [`registry`] — kernel versions at multiple hardware-description
//!   levels, with automatic most-specific selection per device and the
//!   "add a hardware description" suggestion for uncovered devices;
//! * [`balancer`] — the two-phase device load balancer of Sec. III-B
//!   (static relative-speed table, then measured-time scenario
//!   minimization);
//! * [`runtime`] — the `enableManyCore()` layer: node-level D&C jobs expand
//!   into device jobs with overlapped PCIe transfers and kernel
//!   executions, automatic device-memory management, and the
//!   try/catch → `leafCPU` fallback;
//! * [`init`] — master/slave initialization with run-time-info broadcast
//!   and per-device kernel compilation;
//! * [`spec`] — cluster compositions, including the paper's Table III
//!   heterogeneous configurations.
//!
//! ```
//! use cashmere::{build_cluster, ClusterSpec, KernelRegistry, RuntimeConfig};
//! use cashmere_hwdesc::standard_hierarchy;
//! use cashmere_satin::SimConfig;
//! # use cashmere_satin::{ClusterApp, DcStep};
//! # use cashmere::{CashmereApp, KernelCall};
//! # use cashmere_mcl::value::{ArgValue, ArrayArg};
//! # use cashmere_des::SimTime;
//! # struct App;
//! # impl ClusterApp for App {
//! #     type Input = (u64, u64); type Output = f64;
//! #     fn step(&self, &(lo, hi): &(u64, u64)) -> DcStep<(u64, u64)> {
//! #         if hi - lo <= 256 { DcStep::Leaf } else {
//! #             let m = lo + (hi - lo) / 2;
//! #             DcStep::Divide(vec![(lo, m), (m, hi)]) } }
//! #     fn combine(&self, _i: &(u64, u64), c: Vec<f64>) -> f64 { c.into_iter().sum() }
//! #     fn input_bytes(&self, _i: &(u64, u64)) -> u64 { 16 }
//! #     fn output_bytes(&self, _o: &f64) -> u64 { 8 }
//! # }
//! # impl CashmereApp for App {
//! #     fn device_jobs(&self, i: &(u64, u64)) -> Vec<(u64, u64)> { vec![*i] }
//! #     fn kernel_call(&self, &(lo, hi): &(u64, u64)) -> KernelCall {
//! #         let n = hi - lo;
//! #         let y: Vec<f64> = (lo..hi).map(|v| v as f64).collect();
//! #         KernelCall::from_args("double_all", vec![
//! #             ArgValue::Int(n as i64),
//! #             ArgValue::Array(ArrayArg::float(&[n], y)),
//! #         ], &[1])
//! #     }
//! #     fn job_output(&self, _i: &(u64, u64), args: Vec<ArgValue>) -> f64 {
//! #         args[1].clone().array().as_f64().iter().sum()
//! #     }
//! #     fn leaf_cpu(&self, &(lo, hi): &(u64, u64)) -> (SimTime, f64) {
//! #         (SimTime::from_micros(hi - lo), (lo..hi).map(|v| 2.0 * v as f64).sum())
//! #     }
//! # }
//!
//! let mut registry = KernelRegistry::new(standard_hierarchy());
//! registry.register(
//!     "perfect void double_all(int n, float[n] y) {
//!        foreach (int i in n threads) { y[i] = y[i] * 2.0; }
//!      }",
//! ).unwrap();
//!
//! let spec = ClusterSpec::homogeneous(2, "gtx480");
//! let mut cluster = build_cluster(
//!     App,
//!     registry,
//!     &spec,
//!     SimConfig::default(),
//!     RuntimeConfig { functional: true, ..RuntimeConfig::default() },
//! ).unwrap();
//! let sum = cluster.run_root((0, 1024));
//! assert_eq!(sum, (0..1024u64).map(|v| 2.0 * v as f64).sum::<f64>());
//! ```

pub mod balancer;
pub mod counterfactual;
pub mod init;
pub mod paper_api;
pub mod registry;
pub mod runtime;
pub mod spec;

pub use balancer::{
    build_policy, Balancer, BalancerView, DeviceEstimate, PlacementPolicy, PolicyDesc,
};
pub use counterfactual::{replay_audit, CounterfactualReplay, PlacementFlip};
pub use init::{initialize, InitReport};
pub use paper_api::{Cashmere, KernelHandle, KernelLaunch, LaunchError, LaunchResult};
pub use registry::{arg_shape, KernelRegistry, StatsKey};
pub use runtime::{AuditEntry, CashmereApp, CashmereLeafRuntime, KernelCall, RuntimeConfig};
pub use spec::ClusterSpec;

use cashmere_satin::{ClusterSim, SimConfig};

/// Build a simulated Cashmere cluster: `spec.nodes()` nodes, each carrying
/// the devices the spec names, running `app` with the given kernel
/// registry. `sim_cfg.nodes` is overridden by the spec.
pub fn build_cluster<A: CashmereApp>(
    app: A,
    registry: KernelRegistry,
    spec: &ClusterSpec,
    mut sim_cfg: SimConfig,
    rt_cfg: RuntimeConfig,
) -> Result<ClusterSim<A, CashmereLeafRuntime>, String> {
    sim_cfg.nodes = spec.nodes();
    let leaf = CashmereLeafRuntime::new(registry, &spec.node_devices, rt_cfg)?;
    Ok(ClusterSim::new(app, leaf, sim_cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cashmere_des::SimTime;
    use cashmere_hwdesc::standard_hierarchy;
    use cashmere_mcl::value::{ArgValue, ArrayArg};
    use cashmere_satin::{ClusterApp, DcStep, SimConfig};

    /// Test app: double every element of `0..n`; node-level leaves expand
    /// into 8 device jobs each.
    struct DoubleApp {
        node_grain: u64,
        dev_jobs: u64,
    }

    impl ClusterApp for DoubleApp {
        type Input = (u64, u64);
        type Output = f64;

        fn step(&self, &(lo, hi): &(u64, u64)) -> DcStep<(u64, u64)> {
            if hi - lo <= self.node_grain {
                DcStep::Leaf
            } else {
                let mid = lo + (hi - lo) / 2;
                DcStep::Divide(vec![(lo, mid), (mid, hi)])
            }
        }

        fn combine(&self, _i: &(u64, u64), c: Vec<f64>) -> f64 {
            c.into_iter().sum()
        }

        fn input_bytes(&self, &(lo, hi): &(u64, u64)) -> u64 {
            (hi - lo) * 4
        }

        fn output_bytes(&self, _o: &f64) -> u64 {
            8
        }
    }

    impl CashmereApp for DoubleApp {
        fn device_jobs(&self, &(lo, hi): &(u64, u64)) -> Vec<(u64, u64)> {
            let step = ((hi - lo) / self.dev_jobs).max(1);
            let mut jobs = Vec::new();
            let mut cur = lo;
            while cur < hi {
                let end = (cur + step).min(hi);
                jobs.push((cur, end));
                cur = end;
            }
            jobs
        }

        fn kernel_call(&self, &(lo, hi): &(u64, u64)) -> KernelCall {
            let n = hi - lo;
            let y: Vec<f64> = (lo..hi).map(|v| v as f64).collect();
            KernelCall::from_args(
                "double_all",
                vec![
                    ArgValue::Int(n as i64),
                    ArgValue::Array(ArrayArg::float(&[n], y)),
                ],
                &[1],
            )
        }

        fn job_output(&self, _i: &(u64, u64), args: Vec<ArgValue>) -> f64 {
            args[1].clone().array().as_f64().iter().sum()
        }

        fn leaf_cpu(&self, &(lo, hi): &(u64, u64)) -> (SimTime, f64) {
            (
                SimTime::from_micros(hi - lo),
                (lo..hi).map(|v| 2.0 * v as f64).sum(),
            )
        }
    }

    const PERFECT_DOUBLE: &str = "perfect void double_all(int n, float[n] y) {
  foreach (int i in n threads) { y[i] = y[i] * 2.0; }
}";
    const GPU_DOUBLE: &str = "gpu void double_all(int n, float[n] y) {
  foreach (int b in (n + 255) / 256 blocks) {
    foreach (int t in 256 threads) {
      int i = b * 256 + t;
      if (i < n) { y[i] = y[i] * 2.0; }
    }
  }
}";

    fn registry() -> KernelRegistry {
        let mut r = KernelRegistry::new(standard_hierarchy());
        r.register(PERFECT_DOUBLE).unwrap();
        r.register(GPU_DOUBLE).unwrap();
        r
    }

    fn expected(n: u64) -> f64 {
        (0..n).map(|v| 2.0 * v as f64).sum()
    }

    #[test]
    fn functional_run_on_homogeneous_cluster() {
        let app = DoubleApp {
            node_grain: 4096,
            dev_jobs: 8,
        };
        let spec = ClusterSpec::homogeneous(4, "gtx480");
        let mut cluster = build_cluster(
            app,
            registry(),
            &spec,
            SimConfig::default(),
            RuntimeConfig {
                functional: true,
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        let n = 64 * 1024;
        let out = cluster.run_root((0, n));
        assert_eq!(out, expected(n));
        let rt = cluster.leaf_runtime();
        // 64k / 4k grain = 16 node leaves × 8 device jobs.
        assert_eq!(rt.kernels_run, 128);
        assert_eq!(rt.cpu_fallbacks, 0);
        assert!(cluster.report().steals_ok > 0, "work distributed");
    }

    #[test]
    fn heterogeneous_cluster_uses_different_devices() {
        let app = DoubleApp {
            node_grain: 8192,
            dev_jobs: 8,
        };
        let spec = ClusterSpec::paper_hetero_small();
        let mut cluster = build_cluster(
            app,
            registry(),
            &spec,
            SimConfig::default(),
            RuntimeConfig {
                functional: true,
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        // Enough node leaves (n / node_grain = 256) that every one of the
        // 15 nodes sees work regardless of the steal-victim stream; with
        // fewer leaves the set of winning nodes is seed-sensitive.
        let n = 2 * 1024 * 1024;
        let out = cluster.run_root((0, n));
        assert_eq!(out, expected(n));
        let rt = cluster.leaf_runtime();
        // Several distinct device kinds saw work.
        let mut kinds_used = std::collections::BTreeSet::new();
        for node in &rt.nodes {
            for d in &node.devices {
                if d.jobs_run > 0 {
                    kinds_used.insert(d.sim.level_name.clone());
                }
            }
        }
        assert!(
            kinds_used.len() >= 3,
            "expected ≥3 device kinds used, got {kinds_used:?}"
        );
    }

    #[test]
    fn phi_and_k20_share_a_node_with_balanced_split() {
        // One node with a K20 and a Xeon Phi: the balancer should send most
        // (but not all) jobs to the K20 once times are measured — the
        // paper's Fig. 16 discussion (7 K20 / 1 Phi per set of 8).
        let app = DoubleApp {
            node_grain: 64 * 1024,
            dev_jobs: 8,
        };
        let spec = ClusterSpec {
            node_devices: vec![vec!["k20".to_string(), "xeon_phi".to_string()]],
        };
        let mut cluster = build_cluster(
            app,
            registry(),
            &spec,
            SimConfig::default(),
            RuntimeConfig {
                functional: true,
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        let n = 1024 * 1024; // 16 node leaves × 8 device jobs = 128 jobs
        let out = cluster.run_root((0, n));
        assert_eq!(out, expected(n));
        let rt = cluster.leaf_runtime();
        let k20_jobs = rt.nodes[0].devices[0].jobs_run;
        let phi_jobs = rt.nodes[0].devices[1].jobs_run;
        assert_eq!(k20_jobs + phi_jobs, 128);
        assert!(
            k20_jobs > phi_jobs,
            "K20 ({k20_jobs}) should get more work than the Phi ({phi_jobs})"
        );
    }

    #[test]
    fn cpu_fallback_when_no_kernel_version_applies() {
        let app = DoubleApp {
            node_grain: 4096,
            dev_jobs: 4,
        };
        // Register only an AMD version; the GTX480 cluster cannot run it.
        let mut r = KernelRegistry::new(standard_hierarchy());
        r.register(
            "amd void double_all(int n, float[n] y) {
  foreach (int b in (n + 255) / 256 blocks) {
    foreach (int t in 256 threads) {
      int i = b * 256 + t;
      if (i < n) { y[i] = y[i] * 2.0; }
    }
  }
}",
        )
        .unwrap();
        let spec = ClusterSpec::homogeneous(2, "gtx480");
        let mut cluster = build_cluster(
            app,
            r,
            &spec,
            SimConfig::default(),
            RuntimeConfig {
                functional: true,
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        let n = 16 * 1024;
        let out = cluster.run_root((0, n));
        assert_eq!(out, expected(n), "leafCPU produced the right answer");
        let rt = cluster.leaf_runtime();
        assert_eq!(rt.kernels_run, 0);
        assert!(rt.cpu_fallbacks > 0);
    }

    #[test]
    fn estimated_mode_caches_stats_per_shape() {
        let app = DoubleApp {
            node_grain: 1 << 20,
            dev_jobs: 8,
        };
        let spec = ClusterSpec::homogeneous(2, "gtx480");
        let mut cluster = build_cluster(
            app,
            registry(),
            &spec,
            SimConfig::default(),
            RuntimeConfig {
                functional: false,
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        let n = 1 << 24; // 16 node leaves, uniform shapes
        let _ = cluster.run_root((0, n));
        let rt = cluster.leaf_runtime();
        assert!(rt.kernels_run >= 128);
        // All device jobs share one shape ⇒ one cache entry.
        assert_eq!(rt.registry.cache_len(), 1);
    }

    #[test]
    fn transfers_overlap_with_kernels() {
        let app = DoubleApp {
            node_grain: 1 << 20,
            dev_jobs: 8,
        };
        let spec = ClusterSpec::homogeneous(1, "gtx480");
        let mut cluster = build_cluster(
            app,
            registry(),
            &spec,
            SimConfig::default(),
            RuntimeConfig::default(),
        )
        .unwrap();
        let n = 1 << 24;
        let _ = cluster.run_root((0, n));
        let rt = cluster.leaf_runtime();
        let dev = &rt.nodes[0].devices[0].sim;
        let serial = dev.h2d.busy_total() + dev.exec.busy_total() + dev.d2h.busy_total();
        let makespan = cluster.report().makespan;
        assert!(
            makespan < serial,
            "copies must overlap with kernels: makespan {makespan} vs serial {serial}"
        );
    }

    #[test]
    fn gpu_death_degrades_to_cpu_and_still_answers() {
        use cashmere_des::fault::{DeviceFailure, FaultPlan};
        let app = DoubleApp {
            node_grain: 4096,
            dev_jobs: 8,
        };
        // Node 1's only GPU dies mid-run: its remaining device jobs must
        // degrade to leafCPU and the cluster still produces the exact sum.
        let faults = FaultPlan {
            device_failures: vec![DeviceFailure {
                node: 1,
                device: 0,
                at: SimTime::from_micros(100),
            }],
            ..FaultPlan::default()
        };
        let spec = ClusterSpec::homogeneous(2, "gtx480");
        let mut cluster = build_cluster(
            app,
            registry(),
            &spec,
            SimConfig {
                faults,
                ..SimConfig::default()
            },
            RuntimeConfig {
                functional: true,
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        let n = 64 * 1024;
        let out = cluster.run_root((0, n));
        assert_eq!(out, expected(n), "exact answer despite the dead GPU");
        let r = cluster.report().clone();
        assert_eq!(r.devices_lost, 1);
        assert!(r.saw_failures());
        assert!(
            r.fault_cpu_fallbacks > 0,
            "jobs on node 1 after the death must run leafCPU: {}",
            r.failure_summary()
        );
        let rt = cluster.leaf_runtime();
        assert!(rt.nodes[1].devices[0].dead);
        assert!(rt.cpu_fallbacks >= r.fault_cpu_fallbacks);
    }

    #[test]
    fn deterministic_heterogeneous_run() {
        let run = || {
            let app = DoubleApp {
                node_grain: 16 * 1024,
                dev_jobs: 8,
            };
            let mut cluster = build_cluster(
                app,
                registry(),
                &ClusterSpec::paper_hetero_small(),
                SimConfig::default(),
                RuntimeConfig::default(),
            )
            .unwrap();
            let _ = cluster.run_root((0, 1 << 22));
            (
                cluster.report().makespan,
                cluster.leaf_runtime().kernels_run,
            )
        };
        assert_eq!(run(), run());
    }
}
