//! Cashmere's device load balancer: shared bookkeeping + pluggable
//! placement policies (the "policy arena").
//!
//! The paper's two-phase algorithm (Sec. III-B) is the default policy:
//!
//! "Initially, Cashmere uses a heuristic based on a static table of relative
//! many-core device speeds to schedule the first jobs. […] When these jobs
//! have completed, we know the execution time for each kernel for a specific
//! device. Based on this time Cashmere submits the jobs to the different
//! queues for each device trying to minimize the overall execution time for
//! all jobs."
//!
//! The worked example from the paper is reproduced verbatim in the tests:
//! a K20 queue holding 3×100 ms and a GTX480 queue holding 1×125 ms receive
//! a new job; `scenario1 = max(4·100, 1·125)`, `scenario2 = max(3·100,
//! 2·125)`, and since `scenario2` is smaller the job goes to the GTX480.
//!
//! [`Balancer`] owns what every policy needs — the static speed table,
//! per-device queue depths, retired devices, and measured kernel times —
//! and exposes it to a boxed [`PlacementPolicy`] as a read-only
//! [`BalancerView`]. A policy's `decide` must be a deterministic function
//! of the view and its own internal state; a stochastic policy must draw
//! exclusively from a `StreamRng` it owns (seeded via `StreamRng::named`
//! from the run seed) so it never perturbs any other component's stream.
//! None of the built-in policies consume randomness at all.

use cashmere_des::SimTime;
use serde::{Content, DeError, Deserialize, Serialize};
use std::collections::HashMap;

/// Device-selection policy. [`Policy::Scenario`] is the paper's algorithm;
/// the others are arena contenders and ablation baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Policy {
    /// Sec. III-B: minimize the scenario makespan over per-device time
    /// estimates (static table until measured).
    #[default]
    Scenario,
    /// Ignore speeds entirely: rotate over the devices.
    RoundRobin,
    /// Greedy: always the device with the best time estimate, ignoring
    /// queue depths.
    FastestOnly,
    /// HEFT-style lookahead: minimize this job's estimated finish time
    /// `(queued_d + 1) · t_d` over the outstanding estimates.
    Heft,
    /// EngineCL-style dynamic chunking: devices claim consecutive runs of
    /// jobs whose length adapts to their current relative speed.
    DynamicChunk,
    /// Ablation baseline: the scenario rule frozen on the static speed
    /// table — it never switches to measured times.
    StaticTable,
}

// Hand-written so the JSON form is the stable kebab-case CLI name
// (`scenario`, `round-robin`, `fastest-only`, …, with aliases like
// `greedy` accepted and normalized on load).
impl Serialize for Policy {
    fn to_content(&self) -> Content {
        Content::Str(self.name().to_string())
    }
}

impl Deserialize for Policy {
    fn from_content(content: &Content) -> Result<Policy, DeError> {
        match content.as_str() {
            Some(s) => Policy::parse(s).ok_or_else(|| DeError::unknown_variant(s, "Policy")),
            None => Err(DeError::expected("string", "Policy", content)),
        }
    }
}

impl Policy {
    pub const ALL: [Policy; 6] = [
        Policy::Scenario,
        Policy::RoundRobin,
        Policy::FastestOnly,
        Policy::Heft,
        Policy::DynamicChunk,
        Policy::StaticTable,
    ];

    /// Stable CLI/JSON name (`scenario`, `round-robin`, `fastest-only`,
    /// `heft`, `dynamic-chunk`, `static-table`).
    pub fn name(self) -> &'static str {
        match self {
            Policy::Scenario => "scenario",
            Policy::RoundRobin => "round-robin",
            Policy::FastestOnly => "fastest-only",
            Policy::Heft => "heft",
            Policy::DynamicChunk => "dynamic-chunk",
            Policy::StaticTable => "static-table",
        }
    }

    /// Parse a policy name. Aliases (`greedy`, `heft-lookahead`, …) are
    /// normalized: the parsed value round-trips through [`Policy::name`]
    /// as the canonical spelling.
    pub fn parse(s: &str) -> Option<Policy> {
        match s.to_ascii_lowercase().as_str() {
            "scenario" => Some(Policy::Scenario),
            "round-robin" | "roundrobin" => Some(Policy::RoundRobin),
            "fastest-only" | "fastestonly" | "greedy" => Some(Policy::FastestOnly),
            "heft" | "heft-lookahead" => Some(Policy::Heft),
            "dynamic-chunk" | "dynamicchunk" | "chunk" => Some(Policy::DynamicChunk),
            "static-table" | "statictable" => Some(Policy::StaticTable),
            _ => None,
        }
    }
}

/// Self-description of the policy instance that made a placement decision:
/// canonical name plus the instance's tuning parameters. Recorded in every
/// audit-log entry so tournament artifacts are self-describing.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyDesc {
    pub name: String,
    /// Tuning parameters, in a stable declared order (empty for the
    /// parameterless policies).
    pub params: Vec<(String, f64)>,
}

impl PolicyDesc {
    pub fn named(name: &str) -> PolicyDesc {
        PolicyDesc {
            name: name.to_string(),
            params: Vec::new(),
        }
    }
}

impl Default for PolicyDesc {
    fn default() -> PolicyDesc {
        PolicyDesc::named(Policy::Scenario.name())
    }
}

impl Serialize for PolicyDesc {
    fn to_content(&self) -> Content {
        let params = self
            .params
            .iter()
            .map(|(k, v)| (Content::Str(k.clone()), Content::F64(*v)))
            .collect();
        Content::Map(vec![
            (
                Content::Str("name".to_string()),
                Content::Str(self.name.clone()),
            ),
            (Content::Str("params".to_string()), Content::Map(params)),
        ])
    }
}

impl Deserialize for PolicyDesc {
    fn from_content(content: &Content) -> Result<PolicyDesc, DeError> {
        // Legacy audit logs stored the bare policy name; normalize known
        // aliases through `Policy::parse` and keep unknown names verbatim.
        if let Some(s) = content.as_str() {
            let name = Policy::parse(s).map_or_else(|| s.to_string(), |p| p.name().to_string());
            return Ok(PolicyDesc::named(&name));
        }
        let Some(m) = content.as_map() else {
            return Err(DeError::expected("string or map", "PolicyDesc", content));
        };
        let mut name = None;
        let mut params = Vec::new();
        for (k, v) in m {
            match k.as_str() {
                Some("name") => {
                    name = Some(
                        v.as_str()
                            .ok_or_else(|| DeError::expected("string", "PolicyDesc.name", v))?
                            .to_string(),
                    )
                }
                Some("params") => {
                    let pm = v
                        .as_map()
                        .ok_or_else(|| DeError::expected("map", "PolicyDesc.params", v))?;
                    for (pk, pv) in pm {
                        let pk = pk.as_str().ok_or_else(|| {
                            DeError::expected("string key", "PolicyDesc.params", pk)
                        })?;
                        params.push((pk.to_string(), f64::from_content(pv)?));
                    }
                }
                Some(other) => {
                    return Err(DeError::custom(format!(
                        "unknown PolicyDesc field `{other}`"
                    )))
                }
                None => return Err(DeError::expected("string key", "PolicyDesc", k)),
            }
        }
        let name = name.ok_or_else(|| DeError::missing_field("name", "PolicyDesc"))?;
        Ok(PolicyDesc { name, params })
    }
}

/// Read-only snapshot of the balancer's bookkeeping at decision time: what
/// a [`PlacementPolicy`] reasons about.
pub struct BalancerView<'a> {
    /// The kernel being placed.
    pub kernel: &'a str,
    /// Static relative speed table (paper: K20 = 40, GTX480 = 20).
    pub speeds: &'a [f64],
    /// Jobs currently queued or running per device.
    pub queued: &'a [usize],
    /// Devices permanently retired (failed).
    pub dead: &'a [bool],
    /// Per-device time estimate for `kernel` in seconds (measured wins,
    /// then extrapolation, then the static reciprocal) — see
    /// [`Balancer::estimates`].
    pub estimates: &'a [f64],
    /// Which devices have a measured time for `kernel`.
    pub measured: &'a [bool],
}

impl BalancerView<'_> {
    fn devices(&self) -> usize {
        self.speeds.len()
    }
}

/// A placement policy: the decision layer of the balancer, behind a trait
/// object so contenders can be added without touching the runtime.
///
/// Contract: `decide` must be deterministic given the view, the mask and
/// the policy's own state. A policy that wants randomness must own a
/// `StreamRng` (seeded via `StreamRng::named` from the run seed) — it must
/// never share another component's stream. `observe_completion` fires once
/// per finished device job, before the next decision for that node.
pub trait PlacementPolicy: Send {
    /// The spec tag this policy was built from.
    fn kind(&self) -> Policy;

    /// Name + parameters, for the audit log. Defaults to the kind's
    /// canonical name with no parameters.
    fn describe(&self) -> PolicyDesc {
        PolicyDesc::named(self.kind().name())
    }

    /// Pick a device for the next job among `allowed` candidates, or
    /// `None` when no live allowed device exists.
    fn decide(&mut self, view: &BalancerView<'_>, allowed: &[bool]) -> Option<usize>;

    /// Candidate table for the audit log. Defaults to the scenario table
    /// (one row per device, `scenario_s` as the Sec. III-B rule computes
    /// it); policies whose decision inputs differ should override so the
    /// audit reflects what they actually saw.
    fn explain(&self, view: &BalancerView<'_>, allowed: &[bool]) -> Vec<DeviceEstimate> {
        scenario_table(view, allowed)
    }

    /// A job of `kernel` finished on `device` taking `time`.
    fn observe_completion(&mut self, _kernel: &str, _device: usize, _time: SimTime) {}

    fn clone_box(&self) -> Box<dyn PlacementPolicy>;
}

/// Build the built-in policy for a spec tag.
pub fn build_policy(kind: Policy) -> Box<dyn PlacementPolicy> {
    match kind {
        Policy::Scenario => Box::new(ScenarioPolicy),
        Policy::RoundRobin => Box::new(RoundRobinPolicy { next: 0 }),
        Policy::FastestOnly => Box::new(FastestOnlyPolicy),
        Policy::Heft => Box::new(HeftPolicy),
        Policy::DynamicChunk => Box::new(DynamicChunkPolicy::default()),
        Policy::StaticTable => Box::new(StaticTablePolicy),
    }
}

/// The Sec. III-B rule over a set of per-device times: minimize
/// `max_e (queued_e + [e == d]) · t_e` over allowed live devices. Ties
/// break toward the lower device index (deterministic).
fn scenario_pick(
    view: &BalancerView<'_>,
    times: &[f64],
    allowed: Option<&[bool]>,
) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for d in 0..view.devices() {
        if view.dead[d] {
            continue;
        }
        if let Some(mask) = allowed {
            if !mask[d] {
                continue;
            }
        }
        let mut scenario: f64 = 0.0;
        for (e, t) in times.iter().enumerate() {
            if view.dead[e] {
                continue;
            }
            let q = view.queued[e] + usize::from(e == d);
            scenario = scenario.max(q as f64 * t);
        }
        match best {
            Some((_, v)) if v <= scenario => {}
            _ => best = Some((d, scenario)),
        }
    }
    best.map(|(d, _)| d)
}

/// Candidate table over a set of per-device times: one row per device,
/// `scenario_s` populated exactly as [`scenario_pick`] computes it, so the
/// row with the smallest `scenario_s` (lowest index on ties) is the device
/// that rule picks.
fn scenario_rows(view: &BalancerView<'_>, times: &[f64], allowed: &[bool]) -> Vec<DeviceEstimate> {
    (0..view.devices())
        .map(|d| {
            let candidate = allowed[d] && !view.dead[d];
            let scenario_s = candidate.then(|| {
                let mut scenario: f64 = 0.0;
                for (e, t) in times.iter().enumerate() {
                    if view.dead[e] {
                        continue;
                    }
                    let q = view.queued[e] + usize::from(e == d);
                    scenario = scenario.max(q as f64 * t);
                }
                scenario
            });
            DeviceEstimate {
                device: d,
                queued: view.queued[d],
                estimate_s: times[d],
                measured: view.measured[d],
                dead: view.dead[d],
                allowed: allowed[d],
                scenario_s,
            }
        })
        .collect()
}

fn scenario_table(view: &BalancerView<'_>, allowed: &[bool]) -> Vec<DeviceEstimate> {
    scenario_rows(view, view.estimates, allowed)
}

/// Static-table reciprocals: the first-phase times, never measured.
fn static_times(view: &BalancerView<'_>) -> Vec<f64> {
    view.speeds.iter().map(|s| 1.0 / s).collect()
}

/// The paper's two-phase algorithm (Sec. III-B).
#[derive(Debug, Clone)]
struct ScenarioPolicy;

impl PlacementPolicy for ScenarioPolicy {
    fn kind(&self) -> Policy {
        Policy::Scenario
    }

    fn decide(&mut self, view: &BalancerView<'_>, allowed: &[bool]) -> Option<usize> {
        scenario_pick(view, view.estimates, Some(allowed))
    }

    fn clone_box(&self) -> Box<dyn PlacementPolicy> {
        Box::new(self.clone())
    }
}

/// Rotate over the devices, skipping retired/excluded ones.
#[derive(Debug, Clone)]
struct RoundRobinPolicy {
    next: usize,
}

impl PlacementPolicy for RoundRobinPolicy {
    fn kind(&self) -> Policy {
        Policy::RoundRobin
    }

    fn decide(&mut self, view: &BalancerView<'_>, allowed: &[bool]) -> Option<usize> {
        let n = view.devices();
        for k in 0..n {
            let d = (self.next + k) % n;
            if allowed[d] && !view.dead[d] {
                self.next = (d + 1) % n;
                return Some(d);
            }
        }
        None
    }

    fn clone_box(&self) -> Box<dyn PlacementPolicy> {
        Box::new(self.clone())
    }
}

/// Always the best time estimate, ignoring queue depths.
#[derive(Debug, Clone)]
struct FastestOnlyPolicy;

impl PlacementPolicy for FastestOnlyPolicy {
    fn kind(&self) -> Policy {
        Policy::FastestOnly
    }

    fn decide(&mut self, view: &BalancerView<'_>, allowed: &[bool]) -> Option<usize> {
        (0..view.devices())
            .filter(|&d| allowed[d] && !view.dead[d])
            .min_by(|&a, &b| view.estimates[a].total_cmp(&view.estimates[b]))
    }

    fn clone_box(&self) -> Box<dyn PlacementPolicy> {
        Box::new(self.clone())
    }
}

/// HEFT-style earliest-finish-time lookahead: this job would finish on
/// device `d` after the backlog ahead of it, at `(queued_d + 1) · t_d`.
/// Unlike the scenario rule it ignores the makespan contribution of the
/// *other* queues, so a long queue elsewhere never masks the local choice.
#[derive(Debug, Clone)]
struct HeftPolicy;

impl PlacementPolicy for HeftPolicy {
    fn kind(&self) -> Policy {
        Policy::Heft
    }

    fn decide(&mut self, view: &BalancerView<'_>, allowed: &[bool]) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (d, &ok) in allowed.iter().enumerate().take(view.devices()) {
            if !ok || view.dead[d] {
                continue;
            }
            let finish = (view.queued[d] + 1) as f64 * view.estimates[d];
            match best {
                Some((_, v)) if v <= finish => {}
                _ => best = Some((d, finish)),
            }
        }
        best.map(|(d, _)| d)
    }

    fn clone_box(&self) -> Box<dyn PlacementPolicy> {
        Box::new(self.clone())
    }
}

/// EngineCL-style dynamic chunking: a device claims a run ("chunk") of
/// consecutive jobs, sized to its current relative speed, so fast devices
/// get long runs and slow devices short ones. When a chunk is exhausted
/// the policy re-reads the estimates — which migrate from the static table
/// to measured times as completions arrive — and starts a new chunk on the
/// device with the least outstanding backlog; chunk lengths therefore
/// adapt over the run without an explicit feedback controller.
#[derive(Debug, Clone)]
struct DynamicChunkPolicy {
    /// Device currently consuming a chunk, and how many jobs remain in it.
    current: Option<usize>,
    left: usize,
    /// Chunk length granted to a device at relative speed 1.0.
    base: usize,
    /// Cap on any single chunk.
    max: usize,
}

impl Default for DynamicChunkPolicy {
    fn default() -> DynamicChunkPolicy {
        DynamicChunkPolicy {
            current: None,
            left: 0,
            base: 4,
            max: 16,
        }
    }
}

impl PlacementPolicy for DynamicChunkPolicy {
    fn kind(&self) -> Policy {
        Policy::DynamicChunk
    }

    fn describe(&self) -> PolicyDesc {
        PolicyDesc {
            name: self.kind().name().to_string(),
            params: vec![
                ("base".to_string(), self.base as f64),
                ("max".to_string(), self.max as f64),
            ],
        }
    }

    fn decide(&mut self, view: &BalancerView<'_>, allowed: &[bool]) -> Option<usize> {
        if let Some(c) = self.current {
            if self.left > 0 && allowed[c] && !view.dead[c] {
                self.left -= 1;
                return Some(c);
            }
        }
        // Start a new chunk: least outstanding backlog wins (ties toward
        // the lower index), sized by the winner's speed relative to the
        // fastest candidate.
        let mut best: Option<(usize, f64)> = None;
        let mut t_min = f64::INFINITY;
        for (d, &ok) in allowed.iter().enumerate().take(view.devices()) {
            if !ok || view.dead[d] {
                continue;
            }
            t_min = t_min.min(view.estimates[d]);
            let backlog = view.queued[d] as f64 * view.estimates[d];
            match best {
                Some((_, v)) if v <= backlog => {}
                _ => best = Some((d, backlog)),
            }
        }
        let (d, _) = best?;
        let ratio = if view.estimates[d] > 0.0 {
            t_min / view.estimates[d]
        } else {
            1.0
        };
        let chunk = ((self.base as f64 * ratio).round() as usize).clamp(1, self.max);
        self.current = Some(d);
        self.left = chunk - 1;
        Some(d)
    }

    fn observe_completion(&mut self, _kernel: &str, device: usize, _time: SimTime) {
        // A completion means fresh measurements may have landed: end the
        // completing device's chunk early so the next decision re-reads
        // the estimates instead of riding a stale grant.
        if self.current == Some(device) {
            self.left = 0;
        }
    }

    fn clone_box(&self) -> Box<dyn PlacementPolicy> {
        Box::new(self.clone())
    }
}

/// The scenario rule frozen on the static speed table: never switches to
/// measured times (the paper's first phase, made permanent — the baseline
/// the two-phase design is measured against).
#[derive(Debug, Clone)]
struct StaticTablePolicy;

impl PlacementPolicy for StaticTablePolicy {
    fn kind(&self) -> Policy {
        Policy::StaticTable
    }

    fn decide(&mut self, view: &BalancerView<'_>, allowed: &[bool]) -> Option<usize> {
        scenario_pick(view, &static_times(view), Some(allowed))
    }

    fn explain(&self, view: &BalancerView<'_>, allowed: &[bool]) -> Vec<DeviceEstimate> {
        // The audit must show the inputs this policy actually used: the
        // static reciprocals, never flagged as measured.
        let times = static_times(view);
        let mut rows = scenario_rows(view, &times, allowed);
        for r in &mut rows {
            r.measured = false;
        }
        rows
    }

    fn clone_box(&self) -> Box<dyn PlacementPolicy> {
        Box::new(self.clone())
    }
}

/// Per-device queue state the balancer reasons about.
#[derive(Debug, Clone)]
pub struct QueueView {
    /// Static relative speed (paper: K20 = 40, GTX480 = 20).
    pub relative_speed: f64,
    /// Jobs currently queued or running on the device.
    pub queued: usize,
}

/// One device's candidacy for a kernel call, as seen by the balancer at
/// decision time. Rows of the audit log's candidate tables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceEstimate {
    pub device: usize,
    /// Jobs queued or running on the device when the choice was made.
    pub queued: usize,
    /// Per-job time estimate in seconds (measured, extrapolated from a
    /// measured reference, or the static-table reciprocal).
    pub estimate_s: f64,
    /// Whether the estimate comes from a measured execution of this kernel
    /// on this device (the paper's second phase) rather than the static
    /// speed table.
    pub measured: bool,
    pub dead: bool,
    /// Whether the device has an applicable kernel version.
    pub allowed: bool,
    /// Scenario makespan `max_e (queued_e + [e==d])·t_e` if the job were
    /// sent here; `None` when the device is not a candidate.
    pub scenario_s: Option<f64>,
}

/// The per-node balancer: static speed table seeding + measured kernel
/// times per device, with decisions delegated to a [`PlacementPolicy`].
pub struct Balancer {
    speeds: Vec<f64>,
    queued: Vec<usize>,
    /// Devices permanently retired (failed); never chosen again.
    dead: Vec<bool>,
    /// Measured execution time per (kernel, device index).
    measured: HashMap<(String, usize), SimTime>,
    /// Selection policy (`Option` only so decisions can temporarily take
    /// it out past the borrow on the view; always `Some` between calls).
    policy: Option<Box<dyn PlacementPolicy>>,
}

impl Clone for Balancer {
    fn clone(&self) -> Balancer {
        Balancer {
            speeds: self.speeds.clone(),
            queued: self.queued.clone(),
            dead: self.dead.clone(),
            measured: self.measured.clone(),
            policy: self.policy.as_ref().map(|p| p.clone_box()),
        }
    }
}

impl std::fmt::Debug for Balancer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Balancer")
            .field("speeds", &self.speeds)
            .field("queued", &self.queued)
            .field("dead", &self.dead)
            .field("policy", &self.policy_kind().name())
            .finish_non_exhaustive()
    }
}

impl Balancer {
    /// Build from the devices' static relative speeds, with the paper's
    /// scenario policy.
    pub fn new(relative_speeds: &[f64]) -> Balancer {
        assert!(!relative_speeds.is_empty(), "a node needs ≥1 device");
        Balancer {
            speeds: relative_speeds.to_vec(),
            queued: vec![0; relative_speeds.len()],
            dead: vec![false; relative_speeds.len()],
            measured: HashMap::new(),
            policy: Some(build_policy(Policy::Scenario)),
        }
    }

    /// Swap in the built-in policy for `kind` (fresh internal state).
    pub fn set_policy(&mut self, kind: Policy) {
        self.policy = Some(build_policy(kind));
    }

    /// Swap in an arbitrary policy instance (arena extension point).
    pub fn set_placement(&mut self, policy: Box<dyn PlacementPolicy>) {
        self.policy = Some(policy);
    }

    /// The spec tag of the active policy.
    pub fn policy_kind(&self) -> Policy {
        self.policy.as_ref().expect("policy present").kind()
    }

    /// Name + parameters of the active policy, for the audit log.
    pub fn describe_policy(&self) -> PolicyDesc {
        self.policy.as_ref().expect("policy present").describe()
    }

    /// Permanently retire a failed device: it is never chosen again, its
    /// queue no longer contributes to scenario makespans, and its
    /// measurements are dropped (they must not seed extrapolation for the
    /// survivors).
    pub fn retire_device(&mut self, device: usize) {
        self.dead[device] = true;
        self.queued[device] = 0;
        self.measured.retain(|(_, d), _| *d != device);
    }

    /// Is `device` retired?
    pub fn is_retired(&self, device: usize) -> bool {
        self.dead[device]
    }

    /// Are any devices still usable?
    pub fn any_alive(&self) -> bool {
        self.dead.iter().any(|d| !d)
    }

    pub fn device_count(&self) -> usize {
        self.speeds.len()
    }

    /// The static relative-speed table entry of `device`.
    pub fn speed(&self, device: usize) -> f64 {
        self.speeds[device]
    }

    /// Scale the static relative-speed table entry of `device` by `factor`
    /// (advisor what-if: perturb the balancer's *belief* about a device
    /// without touching the device itself). Affects first-phase placement
    /// and the extrapolation ratio for unmeasured devices; measured kernel
    /// times still win, exactly as a miscalibrated seed table would behave.
    pub fn scale_speed(&mut self, device: usize, factor: f64) {
        assert!(factor.is_finite() && factor > 0.0, "bad table factor");
        self.speeds[device] *= factor;
    }

    pub fn queued(&self, device: usize) -> usize {
        self.queued[device]
    }

    /// Record that a job was submitted to `device`.
    pub fn on_submit(&mut self, device: usize) {
        self.queued[device] += 1;
    }

    /// Record that a job completed on `device` with the given kernel time —
    /// from now on the balancer knows this kernel's speed on this device.
    /// The active policy observes the completion too.
    pub fn on_complete(&mut self, kernel: &str, device: usize, time: SimTime) {
        debug_assert!(self.queued[device] > 0);
        self.queued[device] -= 1;
        self.measured.insert((kernel.to_string(), device), time);
        if let Some(p) = self.policy.as_mut() {
            p.observe_completion(kernel, device, time);
        }
    }

    /// Has any device measured this kernel yet?
    pub fn has_measurement(&self, kernel: &str) -> bool {
        self.measured.keys().any(|(k, _)| k == kernel)
    }

    /// Per-device time estimate for `kernel`, in seconds. Measured times
    /// win; unmeasured devices are extrapolated from a measured one via the
    /// static speed ratio; with no measurements at all, times are the pure
    /// reciprocal of the static speeds (arbitrary unit — only ratios
    /// matter for the choice).
    pub fn estimates(&self, kernel: &str) -> Vec<f64> {
        let n = self.speeds.len();
        let mut out = vec![f64::NAN; n];
        let mut reference: Option<(usize, f64)> = None;
        // Single pass over the measurement map: no per-device String keys on
        // this hot path (called for every device-job submission).
        for ((k, d), t) in &self.measured {
            if k == kernel {
                out[*d] = t.as_secs_f64();
            }
        }
        for (d, slot) in out.iter().enumerate() {
            if !slot.is_nan() && reference.is_none() {
                reference = Some((d, *slot));
            }
        }
        for (d, slot) in out.iter_mut().enumerate() {
            if slot.is_nan() {
                *slot = match reference {
                    Some((rd, rt)) => rt * self.speeds[rd] / self.speeds[d],
                    None => 1.0 / self.speeds[d],
                };
            }
        }
        out
    }

    /// Which devices have a measured time for `kernel`.
    fn measured_mask(&self, kernel: &str) -> Vec<bool> {
        let mut out = vec![false; self.speeds.len()];
        for (k, d) in self.measured.keys() {
            if k == kernel {
                out[*d] = true;
            }
        }
        out
    }

    /// Choose the device for the next job of `kernel` by the Sec. III-B
    /// rule — always the paper's algorithm, independent of the configured
    /// policy (documented API for the worked examples and the master's
    /// broadcast placement). Ties break toward the lower device index.
    pub fn choose(&self, kernel: &str) -> usize {
        let estimates = self.estimates(kernel);
        let measured = self.measured_mask(kernel);
        let view = self.view(kernel, &estimates, &measured);
        scenario_pick(&view, &estimates, None).expect("at least one device is always allowed")
    }

    /// Convenience: choose + submit in one step.
    pub fn submit(&mut self, kernel: &str) -> usize {
        let d = self.choose(kernel);
        self.on_submit(d);
        d
    }

    fn view<'a>(
        &'a self,
        kernel: &'a str,
        estimates: &'a [f64],
        measured: &'a [bool],
    ) -> BalancerView<'a> {
        BalancerView {
            kernel,
            speeds: &self.speeds,
            queued: &self.queued,
            dead: &self.dead,
            estimates,
            measured,
        }
    }

    /// Like [`Balancer::choose`] but restricted to devices where `allowed`
    /// holds (devices without an applicable kernel version are excluded)
    /// and delegated to the configured [`PlacementPolicy`]. Returns `None`
    /// when no device qualifies.
    pub fn choose_among(&mut self, kernel: &str, allowed: &[bool]) -> Option<usize> {
        assert_eq!(allowed.len(), self.speeds.len());
        let estimates = self.estimates(kernel);
        let measured = self.measured_mask(kernel);
        // Take the policy out for the call: the view borrows `self`
        // immutably while the policy mutates its own state.
        let mut policy = self.policy.take().expect("policy present");
        let choice = policy.decide(&self.view(kernel, &estimates, &measured), allowed);
        self.policy = Some(policy);
        choice
    }

    /// Explain a decision for the audit log: the active policy's candidate
    /// table (one row per device, including excluded ones). For the
    /// scenario policy — and every policy that keeps the default table —
    /// `scenario_s` is populated exactly as [`Balancer::choose_among`]
    /// under [`Policy::Scenario`] would compute it, so the row with the
    /// smallest `scenario_s` (lowest index on ties) is the device that
    /// rule picks.
    pub fn explain(&self, kernel: &str, allowed: &[bool]) -> Vec<DeviceEstimate> {
        assert_eq!(allowed.len(), self.speeds.len());
        let estimates = self.estimates(kernel);
        let measured = self.measured_mask(kernel);
        let view = self.view(kernel, &estimates, &measured);
        self.policy
            .as_ref()
            .expect("policy present")
            .explain(&view, allowed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    /// The verbatim example from Sec. III-B.
    #[test]
    fn paper_example_k20_vs_gtx480() {
        // Devices: 0 = K20 (speed 40), 1 = GTX480 (speed 20).
        let mut b = Balancer::new(&[40.0, 20.0]);
        // Make both devices measured: K20 jobs take 100 ms, GTX480 125 ms.
        b.on_submit(0);
        b.on_complete("k", 0, ms(100));
        b.on_submit(1);
        b.on_complete("k", 1, ms(125));
        // Queue state from the example: K20 has 3 jobs, GTX480 has 1.
        for _ in 0..3 {
            b.on_submit(0);
        }
        b.on_submit(1);
        // scenario1 = max(4·100, 1·125) = 400; scenario2 = max(3·100, 2·125)
        // = 300 ⇒ GTX480 wins.
        assert_eq!(
            b.choose("k"),
            1,
            "the paper's example submits to the GTX480"
        );
    }

    #[test]
    fn static_speeds_seed_the_first_jobs() {
        // Unmeasured: estimates are 1/speed, so the faster device is chosen
        // first, and queues fill ~proportionally to speed.
        let mut b = Balancer::new(&[40.0, 20.0]);
        let mut counts = [0usize; 2];
        for _ in 0..12 {
            let d = b.submit("k");
            counts[d] += 1;
        }
        assert_eq!(counts[0] + counts[1], 12);
        // K20 (2× faster) should get about 2× the jobs.
        assert_eq!(counts[0], 8);
        assert_eq!(counts[1], 4);
    }

    #[test]
    fn measured_time_on_one_device_extrapolates_to_others() {
        let mut b = Balancer::new(&[40.0, 10.0]);
        b.on_submit(0);
        b.on_complete("k", 0, ms(50));
        let est = b.estimates("k");
        assert!((est[0] - 0.050).abs() < 1e-12);
        // 4× slower by the static table ⇒ 200 ms.
        assert!((est[1] - 0.200).abs() < 1e-12);
    }

    #[test]
    fn slow_device_skipped_when_it_would_lengthen_the_run() {
        // One fast device (t=10ms) and one very slow (t=1000ms): for a
        // handful of jobs everything goes to the fast device.
        let mut b = Balancer::new(&[100.0, 1.0]);
        b.on_submit(0);
        b.on_complete("k", 0, ms(10));
        b.on_submit(1);
        b.on_complete("k", 1, ms(1000));
        let mut counts = [0usize; 2];
        for _ in 0..20 {
            counts[b.submit("k")] += 1;
        }
        assert_eq!(counts[1], 0, "slow device would dominate the makespan");
        assert_eq!(counts[0], 20);
    }

    #[test]
    fn slow_device_used_when_queues_grow_long_enough() {
        // Phi-vs-K20 situation from the Gantt discussion (Fig. 16): with 8
        // jobs per set and a 4× slower Phi, the best split is 7 / 1.
        let mut b = Balancer::new(&[40.0, 10.0]);
        b.on_submit(0);
        b.on_complete("kmeans", 0, ms(100));
        b.on_submit(1);
        b.on_complete("kmeans", 1, ms(400));
        let mut counts = [0usize; 2];
        for _ in 0..8 {
            counts[b.submit("kmeans")] += 1;
        }
        assert_eq!(counts, [7, 1], "paper: 7 on the K20, 1 on the Xeon Phi");
    }

    #[test]
    fn per_kernel_measurements_are_independent() {
        let mut b = Balancer::new(&[40.0, 20.0]);
        b.on_submit(0);
        b.on_complete("fast_kernel", 0, ms(1));
        assert!(b.has_measurement("fast_kernel"));
        assert!(!b.has_measurement("other_kernel"));
        // `other_kernel` still uses the static table.
        let est = b.estimates("other_kernel");
        assert!((est[0] - 1.0 / 40.0).abs() < 1e-12);
        assert!((est[1] - 1.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "≥1 device")]
    fn empty_device_list_rejected() {
        let _ = Balancer::new(&[]);
    }

    #[test]
    fn scaled_table_entry_shifts_first_phase_placement() {
        // Unmeasured phase: doubling a device's table entry doubles its
        // share of the seeded jobs (8/4 → 10/2 for speeds 80 vs 20).
        let mut b = Balancer::new(&[40.0, 20.0]);
        b.scale_speed(0, 2.0);
        assert_eq!(b.speed(0), 80.0);
        let mut counts = [0usize; 2];
        for _ in 0..12 {
            counts[b.submit("k")] += 1;
        }
        assert_eq!(counts, [10, 2]);
        // Once measured, real times win over the (mis)scaled table.
        let mut b = Balancer::new(&[40.0, 20.0]);
        b.scale_speed(1, 100.0);
        b.on_submit(0);
        b.on_complete("k", 0, ms(10));
        b.on_submit(1);
        b.on_complete("k", 1, ms(1000));
        let mut counts = [0usize; 2];
        for _ in 0..20 {
            counts[b.submit("k")] += 1;
        }
        assert_eq!(counts[1], 0, "measured 1000ms beats a flattering table");
    }

    #[test]
    fn retired_devices_are_never_chosen() {
        let mut b = Balancer::new(&[40.0, 20.0]);
        b.on_submit(0);
        b.on_complete("k", 0, ms(100));
        // A long queue on the dead device must not distort scenarios either.
        for _ in 0..5 {
            b.on_submit(0);
        }
        b.retire_device(0);
        assert!(b.is_retired(0));
        assert!(b.any_alive());
        // Its measurement is gone, so the survivor falls back to the static
        // table rather than extrapolating from a dead device.
        assert!(!b.has_measurement("k"));
        for _ in 0..4 {
            assert_eq!(b.choose_among("k", &[true, true]), Some(1));
            b.on_submit(1);
        }
        b.retire_device(1);
        assert!(!b.any_alive());
        assert_eq!(b.choose_among("k", &[true, true]), None);
    }

    #[test]
    fn explain_reproduces_the_paper_scenarios() {
        // Same setup as `paper_example_k20_vs_gtx480`.
        let mut b = Balancer::new(&[40.0, 20.0]);
        b.on_submit(0);
        b.on_complete("k", 0, ms(100));
        b.on_submit(1);
        b.on_complete("k", 1, ms(125));
        for _ in 0..3 {
            b.on_submit(0);
        }
        b.on_submit(1);
        let rows = b.explain("k", &[true, true]);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].measured && rows[1].measured);
        assert_eq!(rows[0].queued, 3);
        assert_eq!(rows[1].queued, 1);
        // scenario1 = max(4·100, 1·125) = 400 ms; scenario2 = 300 ms.
        assert!((rows[0].scenario_s.unwrap() - 0.400).abs() < 1e-12);
        assert!((rows[1].scenario_s.unwrap() - 0.300).abs() < 1e-12);
        // The row with the smallest scenario is what choose_among picks.
        assert_eq!(b.choose_among("k", &[true, true]), Some(1));
        // Excluded devices keep their estimate but get no scenario.
        let rows = b.explain("k", &[true, false]);
        assert!(rows[0].scenario_s.is_some());
        assert!(rows[1].scenario_s.is_none());
        assert!(!rows[1].allowed);
    }

    #[test]
    fn round_robin_policy_rotates() {
        let mut b = Balancer::new(&[40.0, 10.0, 20.0]);
        b.set_policy(Policy::RoundRobin);
        let picks: Vec<usize> = (0..6)
            .map(|_| b.choose_among("k", &[true, true, true]).unwrap())
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        // disallowed devices are skipped
        let p = b.choose_among("k", &[false, true, false]).unwrap();
        assert_eq!(p, 1);
    }

    #[test]
    fn fastest_only_policy_ignores_queues() {
        let mut b = Balancer::new(&[40.0, 10.0]);
        b.set_policy(Policy::FastestOnly);
        for _ in 0..10 {
            let d = b.choose_among("k", &[true, true]).unwrap();
            assert_eq!(d, 0, "greedy always picks the fastest");
            b.on_submit(d);
        }
        // and respects the allowed mask
        assert_eq!(b.choose_among("k", &[false, true]), Some(1));
    }

    #[test]
    fn heft_minimizes_local_finish_time() {
        // Measured: device 0 takes 100 ms, device 1 takes 150 ms.
        let mut b = Balancer::new(&[40.0, 20.0]);
        b.set_policy(Policy::Heft);
        b.on_submit(0);
        b.on_complete("k", 0, ms(100));
        b.on_submit(1);
        b.on_complete("k", 1, ms(150));
        // Empty queues: finish(0) = 100 < finish(1) = 150.
        assert_eq!(b.choose_among("k", &[true, true]), Some(0));
        // Load device 0 with 2 jobs: finish(0) = 3·100 = 300 > finish(1)
        // = 1·150.
        b.on_submit(0);
        b.on_submit(0);
        assert_eq!(b.choose_among("k", &[true, true]), Some(1));
        // Unlike the scenario rule, a huge queue elsewhere is invisible:
        // with 9 more jobs on device 0, HEFT still compares only the
        // candidates' own finish times.
        for _ in 0..9 {
            b.on_submit(0);
        }
        assert_eq!(b.choose_among("k", &[true, true]), Some(1));
    }

    #[test]
    fn dynamic_chunk_grants_runs_sized_by_speed() {
        // Static phase, speeds 40 vs 10: the fast device opens with a
        // full base-length chunk (4 jobs) before the policy reconsiders.
        let mut b = Balancer::new(&[40.0, 10.0]);
        b.set_policy(Policy::DynamicChunk);
        let mut picks = Vec::new();
        for _ in 0..5 {
            let d = b.choose_among("k", &[true, true]).unwrap();
            b.on_submit(d);
            picks.push(d);
        }
        assert_eq!(picks, vec![0, 0, 0, 0, 1], "4-chunk on fast, then slow");
        // The slow device's chunk is scaled down by its 4× slower
        // estimate: round(4 · ¼) = 1 job only.
        let d = b.choose_among("k", &[true, true]).unwrap();
        b.on_submit(d);
        assert_eq!(d, 0, "slow chunk was a single job; back to the fast one");
    }

    #[test]
    fn dynamic_chunk_reconsiders_on_completion() {
        let mut b = Balancer::new(&[40.0, 40.0]);
        b.set_policy(Policy::DynamicChunk);
        // Open a chunk on device 0.
        assert_eq!(b.choose_among("k", &[true, true]), Some(0));
        b.on_submit(0);
        // A completion lands: the chunk ends early and the next decision
        // re-reads the (now measured) estimates.
        b.on_complete("k", 0, ms(500));
        b.on_submit(0);
        // Device 0 measured slow (500 ms), device 1 extrapolates to the
        // same 500 ms but has no backlog → least backlog wins.
        assert_eq!(b.choose_among("k", &[true, true]), Some(1));
    }

    #[test]
    fn static_table_never_learns() {
        // Measured times say device 1 is far faster, but the static table
        // says device 0: the baseline keeps trusting the table.
        let mut b = Balancer::new(&[40.0, 20.0]);
        b.set_policy(Policy::StaticTable);
        b.on_submit(0);
        b.on_complete("k", 0, ms(1000));
        b.on_submit(1);
        b.on_complete("k", 1, ms(10));
        let mut counts = [0usize; 2];
        for _ in 0..12 {
            let d = b.choose_among("k", &[true, true]).unwrap();
            b.on_submit(d);
            counts[d] += 1;
        }
        assert_eq!(counts, [8, 4], "8/4 split exactly as in the static phase");
        // Its audit rows show the static reciprocals, never `measured`.
        let rows = b.explain("k", &[true, true]);
        assert!(rows.iter().all(|r| !r.measured));
        assert!((rows[0].estimate_s - 1.0 / 40.0).abs() < 1e-12);
    }

    #[test]
    fn policy_parse_normalizes_aliases() {
        // Satellite: every alias round-trips to one canonical name.
        for (alias, canonical) in [
            ("greedy", "fastest-only"),
            ("fastestonly", "fastest-only"),
            ("roundrobin", "round-robin"),
            ("heft-lookahead", "heft"),
            ("chunk", "dynamic-chunk"),
            ("statictable", "static-table"),
            ("SCENARIO", "scenario"),
        ] {
            let p = Policy::parse(alias).unwrap_or_else(|| panic!("alias {alias} must parse"));
            assert_eq!(p.name(), canonical, "alias {alias}");
            assert_eq!(Policy::parse(p.name()), Some(p), "name is a fixed point");
        }
        assert!(Policy::parse("nonsense").is_none());
        for p in Policy::ALL {
            assert_eq!(Policy::parse(p.name()), Some(p));
        }
    }

    #[test]
    fn policy_desc_serde_accepts_legacy_strings() {
        // Structured form round-trips.
        let d = PolicyDesc {
            name: "dynamic-chunk".to_string(),
            params: vec![("base".to_string(), 4.0), ("max".to_string(), 16.0)],
        };
        let json = serde_json::to_string(&d).unwrap();
        let back: PolicyDesc = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
        // Legacy audit logs stored the bare (possibly aliased) name.
        let legacy: PolicyDesc = serde_json::from_str("\"greedy\"").unwrap();
        assert_eq!(legacy.name, "fastest-only", "aliases normalize on load");
        assert!(legacy.params.is_empty());
        // Unknown fields are rejected.
        assert!(serde_json::from_str::<PolicyDesc>("{\"name\":\"x\",\"bogus\":1}").is_err());
    }

    #[test]
    fn every_policy_decides_deterministically() {
        // Same history ⇒ same decisions, for every built-in policy: run
        // the identical submit/complete script twice and compare picks.
        let script = |kind: Policy| {
            let mut b = Balancer::new(&[40.0, 10.0, 20.0]);
            b.set_policy(kind);
            let mut picks = Vec::new();
            for i in 0..24 {
                let d = b.choose_among("k", &[true, true, true]).unwrap();
                b.on_submit(d);
                picks.push(d);
                if i % 5 == 4 {
                    b.on_complete("k", d, ms(10 + 7 * (i as u64 % 3)));
                }
            }
            picks
        };
        for kind in Policy::ALL {
            assert_eq!(script(kind), script(kind), "{} must be pure", kind.name());
            assert_eq!(Balancer::new(&[1.0]).describe_policy().name, "scenario");
            let mut b = Balancer::new(&[1.0, 2.0]);
            b.set_policy(kind);
            assert_eq!(b.policy_kind(), kind);
            assert_eq!(b.describe_policy().name, kind.name());
        }
    }
}
