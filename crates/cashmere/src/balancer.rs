//! Cashmere's two-phase device load balancer (paper Sec. III-B).
//!
//! "Initially, Cashmere uses a heuristic based on a static table of relative
//! many-core device speeds to schedule the first jobs. […] When these jobs
//! have completed, we know the execution time for each kernel for a specific
//! device. Based on this time Cashmere submits the jobs to the different
//! queues for each device trying to minimize the overall execution time for
//! all jobs."
//!
//! The worked example from the paper is reproduced verbatim in the tests:
//! a K20 queue holding 3×100 ms and a GTX480 queue holding 1×125 ms receive
//! a new job; `scenario1 = max(4·100, 1·125)`, `scenario2 = max(3·100,
//! 2·125)`, and since `scenario2` is smaller the job goes to the GTX480.

use cashmere_des::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Device-selection policy. [`Policy::Scenario`] is the paper's algorithm;
/// the others exist for ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Policy {
    /// Sec. III-B: minimize the scenario makespan over per-device time
    /// estimates (static table until measured).
    #[default]
    Scenario,
    /// Ignore speeds entirely: rotate over the devices.
    RoundRobin,
    /// Greedy: always the device with the best time estimate, ignoring
    /// queue depths.
    FastestOnly,
}

// Hand-written so the JSON form is the stable kebab-case CLI name
// (`scenario`, `round-robin`, `fastest-only`, with `greedy` accepted).
impl Serialize for Policy {
    fn to_content(&self) -> serde::Content {
        serde::Content::Str(self.name().to_string())
    }
}

impl Deserialize for Policy {
    fn from_content(content: &serde::Content) -> Result<Policy, serde::DeError> {
        match content.as_str() {
            Some(s) => Policy::parse(s).ok_or_else(|| serde::DeError::unknown_variant(s, "Policy")),
            None => Err(serde::DeError::expected("string", "Policy", content)),
        }
    }
}

impl Policy {
    pub const ALL: [Policy; 3] = [Policy::Scenario, Policy::RoundRobin, Policy::FastestOnly];

    /// Stable CLI/JSON name (`scenario`, `round-robin`, `fastest-only`).
    pub fn name(self) -> &'static str {
        match self {
            Policy::Scenario => "scenario",
            Policy::RoundRobin => "round-robin",
            Policy::FastestOnly => "fastest-only",
        }
    }

    /// Parse a policy name; accepts `greedy` as an alias for
    /// [`Policy::FastestOnly`].
    pub fn parse(s: &str) -> Option<Policy> {
        match s.to_ascii_lowercase().as_str() {
            "scenario" => Some(Policy::Scenario),
            "round-robin" | "roundrobin" => Some(Policy::RoundRobin),
            "fastest-only" | "fastestonly" | "greedy" => Some(Policy::FastestOnly),
            _ => None,
        }
    }
}

/// Per-device queue state the balancer reasons about.
#[derive(Debug, Clone)]
pub struct QueueView {
    /// Static relative speed (paper: K20 = 40, GTX480 = 20).
    pub relative_speed: f64,
    /// Jobs currently queued or running on the device.
    pub queued: usize,
}

/// One device's candidacy for a kernel call, as seen by the balancer at
/// decision time. Rows of the audit log's candidate tables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceEstimate {
    pub device: usize,
    /// Jobs queued or running on the device when the choice was made.
    pub queued: usize,
    /// Per-job time estimate in seconds (measured, extrapolated from a
    /// measured reference, or the static-table reciprocal).
    pub estimate_s: f64,
    /// Whether the estimate comes from a measured execution of this kernel
    /// on this device (the paper's second phase) rather than the static
    /// speed table.
    pub measured: bool,
    pub dead: bool,
    /// Whether the device has an applicable kernel version.
    pub allowed: bool,
    /// Scenario makespan `max_e (queued_e + [e==d])·t_e` if the job were
    /// sent here; `None` when the device is not a candidate.
    pub scenario_s: Option<f64>,
}

/// The per-node balancer: static speed table seeding + measured kernel
/// times per device.
#[derive(Debug, Clone, Default)]
pub struct Balancer {
    speeds: Vec<f64>,
    queued: Vec<usize>,
    /// Devices permanently retired (failed); never chosen again.
    dead: Vec<bool>,
    /// Measured execution time per (kernel, device index).
    measured: HashMap<(String, usize), SimTime>,
    /// Selection policy (ablation knob; the paper's algorithm by default).
    pub policy: Policy,
    rr_next: usize,
}

impl Balancer {
    /// Build from the devices' static relative speeds.
    pub fn new(relative_speeds: &[f64]) -> Balancer {
        assert!(!relative_speeds.is_empty(), "a node needs ≥1 device");
        Balancer {
            speeds: relative_speeds.to_vec(),
            queued: vec![0; relative_speeds.len()],
            dead: vec![false; relative_speeds.len()],
            measured: HashMap::new(),
            policy: Policy::Scenario,
            rr_next: 0,
        }
    }

    /// Permanently retire a failed device: it is never chosen again, its
    /// queue no longer contributes to scenario makespans, and its
    /// measurements are dropped (they must not seed extrapolation for the
    /// survivors).
    pub fn retire_device(&mut self, device: usize) {
        self.dead[device] = true;
        self.queued[device] = 0;
        self.measured.retain(|(_, d), _| *d != device);
    }

    /// Is `device` retired?
    pub fn is_retired(&self, device: usize) -> bool {
        self.dead[device]
    }

    /// Are any devices still usable?
    pub fn any_alive(&self) -> bool {
        self.dead.iter().any(|d| !d)
    }

    pub fn device_count(&self) -> usize {
        self.speeds.len()
    }

    /// The static relative-speed table entry of `device`.
    pub fn speed(&self, device: usize) -> f64 {
        self.speeds[device]
    }

    /// Scale the static relative-speed table entry of `device` by `factor`
    /// (advisor what-if: perturb the balancer's *belief* about a device
    /// without touching the device itself). Affects first-phase placement
    /// and the extrapolation ratio for unmeasured devices; measured kernel
    /// times still win, exactly as a miscalibrated seed table would behave.
    pub fn scale_speed(&mut self, device: usize, factor: f64) {
        assert!(factor.is_finite() && factor > 0.0, "bad table factor");
        self.speeds[device] *= factor;
    }

    pub fn queued(&self, device: usize) -> usize {
        self.queued[device]
    }

    /// Record that a job was submitted to `device`.
    pub fn on_submit(&mut self, device: usize) {
        self.queued[device] += 1;
    }

    /// Record that a job completed on `device` with the given kernel time —
    /// from now on the balancer knows this kernel's speed on this device.
    pub fn on_complete(&mut self, kernel: &str, device: usize, time: SimTime) {
        debug_assert!(self.queued[device] > 0);
        self.queued[device] -= 1;
        self.measured.insert((kernel.to_string(), device), time);
    }

    /// Has any device measured this kernel yet?
    pub fn has_measurement(&self, kernel: &str) -> bool {
        self.measured.keys().any(|(k, _)| k == kernel)
    }

    /// Per-device time estimate for `kernel`, in seconds. Measured times
    /// win; unmeasured devices are extrapolated from a measured one via the
    /// static speed ratio; with no measurements at all, times are the pure
    /// reciprocal of the static speeds (arbitrary unit — only ratios
    /// matter for the choice).
    pub fn estimates(&self, kernel: &str) -> Vec<f64> {
        let n = self.speeds.len();
        let mut out = vec![f64::NAN; n];
        let mut reference: Option<(usize, f64)> = None;
        // Single pass over the measurement map: no per-device String keys on
        // this hot path (called for every device-job submission).
        for ((k, d), t) in &self.measured {
            if k == kernel {
                out[*d] = t.as_secs_f64();
            }
        }
        for (d, slot) in out.iter().enumerate() {
            if !slot.is_nan() && reference.is_none() {
                reference = Some((d, *slot));
            }
        }
        for (d, slot) in out.iter_mut().enumerate() {
            if slot.is_nan() {
                *slot = match reference {
                    Some((rd, rt)) => rt * self.speeds[rd] / self.speeds[d],
                    None => 1.0 / self.speeds[d],
                };
            }
        }
        out
    }

    /// Choose the device for the next job of `kernel`: minimize over
    /// candidate devices `d` the scenario makespan
    /// `max_e (queued_e + [e == d]) · t_e`. Ties break toward the lower
    /// device index (deterministic).
    pub fn choose(&self, kernel: &str) -> usize {
        self.scenario_choice(kernel, None)
            .expect("at least one device is always allowed")
    }

    /// Convenience: choose + submit in one step.
    pub fn submit(&mut self, kernel: &str) -> usize {
        let d = self.choose(kernel);
        self.on_submit(d);
        d
    }

    /// Like [`Balancer::choose`] but restricted to devices where `allowed`
    /// holds (devices without an applicable kernel version are excluded).
    /// Returns `None` when no device qualifies.
    pub fn choose_among(&mut self, kernel: &str, allowed: &[bool]) -> Option<usize> {
        assert_eq!(allowed.len(), self.speeds.len());
        match self.policy {
            Policy::Scenario => self.scenario_choice(kernel, Some(allowed)),
            Policy::RoundRobin => {
                let n = self.speeds.len();
                for k in 0..n {
                    let d = (self.rr_next + k) % n;
                    if allowed[d] && !self.dead[d] {
                        self.rr_next = (d + 1) % n;
                        return Some(d);
                    }
                }
                None
            }
            Policy::FastestOnly => {
                let times = self.estimates(kernel);
                (0..self.speeds.len())
                    .filter(|&d| allowed[d] && !self.dead[d])
                    .min_by(|&a, &b| times[a].total_cmp(&times[b]))
            }
        }
    }

    /// The Sec. III-B rule shared by [`Balancer::choose`] and
    /// [`Balancer::choose_among`]: minimize `max_e (queued_e + [e=d])·t_e`
    /// over the allowed devices (all of them when `allowed` is `None`).
    fn scenario_choice(&self, kernel: &str, allowed: Option<&[bool]>) -> Option<usize> {
        let times = self.estimates(kernel);
        let mut best: Option<(usize, f64)> = None;
        for d in 0..self.speeds.len() {
            if self.dead[d] {
                continue;
            }
            if let Some(mask) = allowed {
                if !mask[d] {
                    continue;
                }
            }
            let mut scenario: f64 = 0.0;
            for (e, t) in times.iter().enumerate() {
                if self.dead[e] {
                    continue;
                }
                let q = self.queued[e] + usize::from(e == d);
                scenario = scenario.max(q as f64 * t);
            }
            match best {
                Some((_, v)) if v <= scenario => {}
                _ => best = Some((d, scenario)),
            }
        }
        best.map(|(d, _)| d)
    }

    /// Explain a decision: the full candidate table the scenario rule saw
    /// (one row per device, including excluded ones), for the audit log.
    /// `scenario_s` is populated exactly as [`Balancer::choose_among`] with
    /// [`Policy::Scenario`] would compute it, so the row with the smallest
    /// `scenario_s` (lowest index on ties) is the device that rule picks.
    pub fn explain(&self, kernel: &str, allowed: &[bool]) -> Vec<DeviceEstimate> {
        assert_eq!(allowed.len(), self.speeds.len());
        let times = self.estimates(kernel);
        (0..self.speeds.len())
            .map(|d| {
                let candidate = allowed[d] && !self.dead[d];
                let scenario_s = candidate.then(|| {
                    let mut scenario: f64 = 0.0;
                    for (e, t) in times.iter().enumerate() {
                        if self.dead[e] {
                            continue;
                        }
                        let q = self.queued[e] + usize::from(e == d);
                        scenario = scenario.max(q as f64 * t);
                    }
                    scenario
                });
                DeviceEstimate {
                    device: d,
                    queued: self.queued[d],
                    estimate_s: times[d],
                    measured: self.measured.contains_key(&(kernel.to_string(), d)),
                    dead: self.dead[d],
                    allowed: allowed[d],
                    scenario_s,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    /// The verbatim example from Sec. III-B.
    #[test]
    fn paper_example_k20_vs_gtx480() {
        // Devices: 0 = K20 (speed 40), 1 = GTX480 (speed 20).
        let mut b = Balancer::new(&[40.0, 20.0]);
        // Make both devices measured: K20 jobs take 100 ms, GTX480 125 ms.
        b.on_submit(0);
        b.on_complete("k", 0, ms(100));
        b.on_submit(1);
        b.on_complete("k", 1, ms(125));
        // Queue state from the example: K20 has 3 jobs, GTX480 has 1.
        for _ in 0..3 {
            b.on_submit(0);
        }
        b.on_submit(1);
        // scenario1 = max(4·100, 1·125) = 400; scenario2 = max(3·100, 2·125)
        // = 300 ⇒ GTX480 wins.
        assert_eq!(
            b.choose("k"),
            1,
            "the paper's example submits to the GTX480"
        );
    }

    #[test]
    fn static_speeds_seed_the_first_jobs() {
        // Unmeasured: estimates are 1/speed, so the faster device is chosen
        // first, and queues fill ~proportionally to speed.
        let mut b = Balancer::new(&[40.0, 20.0]);
        let mut counts = [0usize; 2];
        for _ in 0..12 {
            let d = b.submit("k");
            counts[d] += 1;
        }
        assert_eq!(counts[0] + counts[1], 12);
        // K20 (2× faster) should get about 2× the jobs.
        assert_eq!(counts[0], 8);
        assert_eq!(counts[1], 4);
    }

    #[test]
    fn measured_time_on_one_device_extrapolates_to_others() {
        let mut b = Balancer::new(&[40.0, 10.0]);
        b.on_submit(0);
        b.on_complete("k", 0, ms(50));
        let est = b.estimates("k");
        assert!((est[0] - 0.050).abs() < 1e-12);
        // 4× slower by the static table ⇒ 200 ms.
        assert!((est[1] - 0.200).abs() < 1e-12);
    }

    #[test]
    fn slow_device_skipped_when_it_would_lengthen_the_run() {
        // One fast device (t=10ms) and one very slow (t=1000ms): for a
        // handful of jobs everything goes to the fast device.
        let mut b = Balancer::new(&[100.0, 1.0]);
        b.on_submit(0);
        b.on_complete("k", 0, ms(10));
        b.on_submit(1);
        b.on_complete("k", 1, ms(1000));
        let mut counts = [0usize; 2];
        for _ in 0..20 {
            counts[b.submit("k")] += 1;
        }
        assert_eq!(counts[1], 0, "slow device would dominate the makespan");
        assert_eq!(counts[0], 20);
    }

    #[test]
    fn slow_device_used_when_queues_grow_long_enough() {
        // Phi-vs-K20 situation from the Gantt discussion (Fig. 16): with 8
        // jobs per set and a 4× slower Phi, the best split is 7 / 1.
        let mut b = Balancer::new(&[40.0, 10.0]);
        b.on_submit(0);
        b.on_complete("kmeans", 0, ms(100));
        b.on_submit(1);
        b.on_complete("kmeans", 1, ms(400));
        let mut counts = [0usize; 2];
        for _ in 0..8 {
            counts[b.submit("kmeans")] += 1;
        }
        assert_eq!(counts, [7, 1], "paper: 7 on the K20, 1 on the Xeon Phi");
    }

    #[test]
    fn per_kernel_measurements_are_independent() {
        let mut b = Balancer::new(&[40.0, 20.0]);
        b.on_submit(0);
        b.on_complete("fast_kernel", 0, ms(1));
        assert!(b.has_measurement("fast_kernel"));
        assert!(!b.has_measurement("other_kernel"));
        // `other_kernel` still uses the static table.
        let est = b.estimates("other_kernel");
        assert!((est[0] - 1.0 / 40.0).abs() < 1e-12);
        assert!((est[1] - 1.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "≥1 device")]
    fn empty_device_list_rejected() {
        let _ = Balancer::new(&[]);
    }

    #[test]
    fn scaled_table_entry_shifts_first_phase_placement() {
        // Unmeasured phase: doubling a device's table entry doubles its
        // share of the seeded jobs (8/4 → 10/2 for speeds 80 vs 20).
        let mut b = Balancer::new(&[40.0, 20.0]);
        b.scale_speed(0, 2.0);
        assert_eq!(b.speed(0), 80.0);
        let mut counts = [0usize; 2];
        for _ in 0..12 {
            counts[b.submit("k")] += 1;
        }
        assert_eq!(counts, [10, 2]);
        // Once measured, real times win over the (mis)scaled table.
        let mut b = Balancer::new(&[40.0, 20.0]);
        b.scale_speed(1, 100.0);
        b.on_submit(0);
        b.on_complete("k", 0, ms(10));
        b.on_submit(1);
        b.on_complete("k", 1, ms(1000));
        let mut counts = [0usize; 2];
        for _ in 0..20 {
            counts[b.submit("k")] += 1;
        }
        assert_eq!(counts[1], 0, "measured 1000ms beats a flattering table");
    }

    #[test]
    fn retired_devices_are_never_chosen() {
        let mut b = Balancer::new(&[40.0, 20.0]);
        b.on_submit(0);
        b.on_complete("k", 0, ms(100));
        // A long queue on the dead device must not distort scenarios either.
        for _ in 0..5 {
            b.on_submit(0);
        }
        b.retire_device(0);
        assert!(b.is_retired(0));
        assert!(b.any_alive());
        // Its measurement is gone, so the survivor falls back to the static
        // table rather than extrapolating from a dead device.
        assert!(!b.has_measurement("k"));
        for _ in 0..4 {
            assert_eq!(b.choose_among("k", &[true, true]), Some(1));
            b.on_submit(1);
        }
        b.retire_device(1);
        assert!(!b.any_alive());
        assert_eq!(b.choose_among("k", &[true, true]), None);
    }

    #[test]
    fn explain_reproduces_the_paper_scenarios() {
        // Same setup as `paper_example_k20_vs_gtx480`.
        let mut b = Balancer::new(&[40.0, 20.0]);
        b.on_submit(0);
        b.on_complete("k", 0, ms(100));
        b.on_submit(1);
        b.on_complete("k", 1, ms(125));
        for _ in 0..3 {
            b.on_submit(0);
        }
        b.on_submit(1);
        let rows = b.explain("k", &[true, true]);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].measured && rows[1].measured);
        assert_eq!(rows[0].queued, 3);
        assert_eq!(rows[1].queued, 1);
        // scenario1 = max(4·100, 1·125) = 400 ms; scenario2 = 300 ms.
        assert!((rows[0].scenario_s.unwrap() - 0.400).abs() < 1e-12);
        assert!((rows[1].scenario_s.unwrap() - 0.300).abs() < 1e-12);
        // The row with the smallest scenario is what choose_among picks.
        assert_eq!(b.choose_among("k", &[true, true]), Some(1));
        // Excluded devices keep their estimate but get no scenario.
        let rows = b.explain("k", &[true, false]);
        assert!(rows[0].scenario_s.is_some());
        assert!(rows[1].scenario_s.is_none());
        assert!(!rows[1].allowed);
    }

    #[test]
    fn round_robin_policy_rotates() {
        let mut b = Balancer::new(&[40.0, 10.0, 20.0]);
        b.policy = Policy::RoundRobin;
        let picks: Vec<usize> = (0..6)
            .map(|_| b.choose_among("k", &[true, true, true]).unwrap())
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
        // disallowed devices are skipped
        let p = b.choose_among("k", &[false, true, false]).unwrap();
        assert_eq!(p, 1);
    }

    #[test]
    fn fastest_only_policy_ignores_queues() {
        let mut b = Balancer::new(&[40.0, 10.0]);
        b.policy = Policy::FastestOnly;
        for _ in 0..10 {
            let d = b.choose_among("k", &[true, true]).unwrap();
            assert_eq!(d, 0, "greedy always picks the fastest");
            b.on_submit(d);
        }
        // and respects the allowed mask
        assert_eq!(b.choose_among("k", &[false, true]), Some(1));
    }
}
