//! The Cashmere leaf runtime: node-level jobs expand into device jobs that
//! are balanced across the node's many-core devices with overlapping PCIe
//! transfers and kernel executions (paper Sec. II-C, III-B).
//!
//! In the paper, a node-level job below the `enableManyCore()` threshold
//! keeps dividing through the same spawnable/sync mechanism, but into
//! *threads* that each drive one device job: copy input to the device, run
//! the kernel, copy the output back. `MCL.launch()` blocks the managing
//! thread, which is exactly how the model gets backpressure — a node only
//! commits to as many node-level jobs as it has cores to manage.
//!
//! Here [`CashmereLeafRuntime`] implements [`LeafRuntime`]: when the
//! cluster engine hands it a node-level leaf it
//!
//! 1. expands it via [`CashmereApp::device_jobs`] (typically 8 jobs);
//! 2. for each device job picks a device with the two-phase balancer
//!    (static speed table → measured kernel times, Sec. III-B);
//! 3. schedules host→device copy, kernel, device→host copy on the device's
//!    three timelines, so copies overlap with kernels automatically;
//! 4. runs the kernel through the MCL interpreter (fully in functional
//!    mode, sampled + cached in estimation mode) to get both the result
//!    and the modelled kernel time;
//! 5. falls back to the CPU leaf when no kernel version applies or device
//!    memory is exhausted (the paper's try/catch → `leafCPU` pattern).

use crate::balancer::{Balancer, DeviceEstimate, PolicyDesc};
use crate::registry::{arg_shape, KernelRegistry, StatsKey};
use cashmere_des::fault::FaultInjector;
use cashmere_des::obs::{prof, MetricsRegistry};
use cashmere_des::trace::{LaneId, SpanId, SpanKind, Trace};
use cashmere_des::SimTime;
use cashmere_devsim::{ExecMode, SimDevice};
use cashmere_mcl::cost::estimate_time;
use cashmere_mcl::launch::LaunchConfig;
use cashmere_mcl::value::ArgValue;
use cashmere_satin::{ClusterApp, LeafCtx, LeafPlan, LeafRuntime, RunReport};
use serde::{Deserialize, Serialize};

/// Description of one kernel invocation (the paper's
/// `Cashmere.getKernel()` / `createLaunch()` / `MCL.launch(kl, a, b)`).
#[derive(Debug, Clone)]
pub struct KernelCall {
    /// Registered kernel name.
    pub kernel: String,
    /// Arguments, in kernel-parameter order.
    pub args: Vec<ArgValue>,
    /// Bytes copied host→device before launch.
    pub h2d_bytes: u64,
    /// Bytes copied device→host after completion.
    pub d2h_bytes: u64,
    /// Bytes of *resident* input shared by every job of this kernel on a
    /// device (the paper's `Kernel.getDevice()` / `Device.copy()` feature):
    /// allocated and transferred once per device, then reused.
    pub resident_bytes: u64,
    /// Extra multiplier applied to sampled statistics (for calibration
    /// workloads whose inner dimensions were shrunk); 1.0 = none.
    pub extra_scale: f64,
}

impl KernelCall {
    /// Build a call with transfer sizes derived from the arguments:
    /// everything is copied in; arrays flagged in `out_args` are copied
    /// back.
    pub fn from_args(kernel: impl Into<String>, args: Vec<ArgValue>, out_args: &[usize]) -> Self {
        let h2d_bytes = args.iter().map(ArgValue::device_bytes).sum();
        let d2h_bytes = out_args.iter().map(|&i| args[i].device_bytes()).sum();
        KernelCall {
            kernel: kernel.into(),
            args,
            h2d_bytes,
            d2h_bytes,
            resident_bytes: 0,
            extra_scale: 1.0,
        }
    }
}

/// A Cashmere application: a [`ClusterApp`] whose leaves know how to run on
/// many-core devices.
pub trait CashmereApp: ClusterApp {
    /// Expand a node-level leaf into device jobs (the paper's "sets of 8
    /// jobs"). Must be non-empty; [`ClusterApp::combine`] must accept the
    /// outputs of this division.
    fn device_jobs(&self, input: &Self::Input) -> Vec<Self::Input>;

    /// Describe the kernel launch for one device job.
    fn kernel_call(&self, input: &Self::Input) -> KernelCall;

    /// Build the device-job output from the post-execution arguments.
    fn job_output(&self, input: &Self::Input, args: Vec<ArgValue>) -> Self::Output;

    /// The `leafCPU` fallback: CPU time and output for one device job.
    fn leaf_cpu(&self, input: &Self::Input) -> (SimTime, Self::Output);
}

/// Runtime knobs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Run kernels fully (real results) instead of sampled (estimates).
    pub functional: bool,
    /// CPU cost of submitting one device job (thread creation + driver).
    pub submit_overhead: SimTime,
    /// Device-selection policy (ablation knob; paper's Sec. III-B default).
    pub balancer_policy: crate::balancer::Policy,
    /// Overlap PCIe transfers with kernel execution (paper Sec. II-C3).
    /// Disabled, everything serializes on one engine — ablation knob.
    pub overlap: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            functional: false,
            submit_overhead: SimTime::from_micros(20),
            balancer_policy: crate::balancer::Policy::Scenario,
            overlap: true,
        }
    }
}

/// One balancer decision, recorded for the audit log (tracing runs only):
/// the candidate table the Sec. III-B rule evaluated and where the job
/// actually went. Terminal outcomes only — a transient launch fault or a
/// mid-flight device death re-enters the decision loop and produces a fresh
/// entry instead.
#[derive(Debug, Clone, Serialize)]
pub struct AuditEntry {
    /// Decision sequence number (audit-log index).
    pub seq: u64,
    pub node: usize,
    pub kernel: String,
    /// Virtual submission time of the device job, in ns.
    pub submit_ns: u64,
    /// Name + parameters of the policy instance that made this decision
    /// (tournament artifacts are self-describing).
    pub policy: PolicyDesc,
    /// Per-device estimates and scenario makespans at decision time.
    pub candidates: Vec<DeviceEstimate>,
    /// Device the job ran on; `None` when it degraded to the CPU leaf.
    pub chosen: Option<usize>,
    /// `"placed"`, or why the job fell back to the CPU
    /// (`"no-usable-device"`, `"launch-fault-budget"`, `"memory-exhausted"`).
    pub reason: String,
}

// Hand-written so old audit artifacts — which either stored the policy as
// a bare name string or (older still) omitted the field — keep loading:
// a missing `policy` backfills the default scenario descriptor.
impl Deserialize for AuditEntry {
    fn from_content(content: &serde::Content) -> Result<AuditEntry, serde::DeError> {
        let Some(m) = content.as_map() else {
            return Err(serde::DeError::expected("map", "AuditEntry", content));
        };
        let known = [
            "seq",
            "node",
            "kernel",
            "submit_ns",
            "policy",
            "candidates",
            "chosen",
            "reason",
        ];
        for (k, _) in m {
            match k.as_str() {
                Some(k) if known.contains(&k) => {}
                Some(k) => {
                    return Err(serde::DeError::custom(format!(
                        "unknown AuditEntry field `{k}`"
                    )))
                }
                None => return Err(serde::DeError::expected("string key", "AuditEntry", k)),
            }
        }
        let field = |name: &str| {
            m.iter()
                .find(|(k, _)| k.as_str() == Some(name))
                .map(|(_, v)| v)
        };
        let req = |name: &'static str| {
            field(name).ok_or_else(|| serde::DeError::missing_field(name, "AuditEntry"))
        };
        Ok(AuditEntry {
            seq: u64::from_content(req("seq")?)?,
            node: usize::from_content(req("node")?)?,
            kernel: String::from_content(req("kernel")?)?,
            submit_ns: u64::from_content(req("submit_ns")?)?,
            policy: match field("policy") {
                Some(v) => PolicyDesc::from_content(v)?,
                None => PolicyDesc::default(),
            },
            candidates: Vec::from_content(req("candidates")?)?,
            chosen: Option::from_content(req("chosen")?)?,
            reason: String::from_content(req("reason")?)?,
        })
    }
}

/// Trace lanes of one device (mirrors the paper's Gantt queues, Fig. 16).
#[derive(Debug, Clone, Copy)]
struct DevLanes {
    h2d: LaneId,
    exec: LaneId,
    d2h: LaneId,
}

/// One device attached to a node.
pub struct DeviceSlot {
    pub sim: SimDevice,
    lanes: Option<DevLanes>,
    /// Live allocations expiring when their job's d2h completes.
    allocations: Vec<(SimTime, cashmere_devsim::BufferId)>,
    /// Resident (kernel-shared) buffers already on the device, by kernel.
    resident: std::collections::HashMap<String, cashmere_devsim::BufferId>,
    pub jobs_run: u64,
    /// Permanently failed (injected device death); never used again.
    pub dead: bool,
}

/// Devices + balancer of one node.
pub struct NodeDevices {
    pub devices: Vec<DeviceSlot>,
    pub balancer: Balancer,
    /// Pending completions: (kernel, device, kernel_time, finish_time).
    pending: Vec<(String, usize, SimTime, SimTime)>,
}

impl NodeDevices {
    /// Report to the balancer every job that has finished by `now`.
    fn reap(&mut self, now: SimTime) {
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].3 <= now {
                let (kernel, d, t, _) = self.pending.swap_remove(i);
                self.balancer.on_complete(&kernel, d, t);
            } else {
                i += 1;
            }
        }
    }
}

/// The Cashmere leaf runtime (one per simulated cluster).
pub struct CashmereLeafRuntime {
    pub registry: KernelRegistry,
    pub nodes: Vec<NodeDevices>,
    pub config: RuntimeConfig,
    /// Device jobs executed on devices.
    pub kernels_run: u64,
    /// Device jobs that fell back to the CPU.
    pub cpu_fallbacks: u64,
    /// Balancer decision audit log (populated only when tracing is on).
    pub audit: Vec<AuditEntry>,
}

impl CashmereLeafRuntime {
    /// Build for a cluster where node `n` carries the devices named in
    /// `spec[n]` (level names in the registry's hierarchy).
    pub fn new(
        registry: KernelRegistry,
        spec: &[Vec<String>],
        config: RuntimeConfig,
    ) -> Result<CashmereLeafRuntime, String> {
        let mut nodes = Vec::with_capacity(spec.len());
        for names in spec {
            if names.is_empty() {
                return Err("every node needs at least one device".into());
            }
            let mut devices = Vec::new();
            let mut speeds = Vec::new();
            for name in names {
                let sim = SimDevice::by_name(registry.hierarchy(), name)?;
                speeds.push(sim.params.relative_speed);
                devices.push(DeviceSlot {
                    sim,
                    lanes: None,
                    allocations: Vec::new(),
                    resident: std::collections::HashMap::new(),
                    jobs_run: 0,
                    dead: false,
                });
            }
            let mut balancer = Balancer::new(&speeds);
            balancer.set_policy(config.balancer_policy);
            nodes.push(NodeDevices {
                devices,
                balancer,
                pending: Vec::new(),
            });
        }
        Ok(CashmereLeafRuntime {
            registry,
            nodes,
            config,
            kernels_run: 0,
            cpu_fallbacks: 0,
            audit: Vec::new(),
        })
    }

    /// Virtually scale the compute speed of every device whose level name
    /// matches `selector` (`*` matches all) by `factor`. Returns how many
    /// devices matched. Advisor what-if hook: kernels finish `factor`×
    /// sooner, and because the balancer learns *measured* times, its
    /// estimates follow automatically.
    pub fn scale_device_speed(&mut self, selector: &str, factor: f64) -> usize {
        let mut matched = 0;
        for nd in &mut self.nodes {
            for slot in &mut nd.devices {
                if selector == "*" || selector == slot.sim.level_name {
                    slot.sim.scale_speed(factor);
                    matched += 1;
                }
            }
        }
        matched
    }

    /// Virtually scale the PCIe link (bandwidth × `factor`, latency ÷
    /// `factor`) of every device matching `selector`. Returns the match
    /// count.
    pub fn scale_pcie(&mut self, selector: &str, factor: f64) -> usize {
        let mut matched = 0;
        for nd in &mut self.nodes {
            for slot in &mut nd.devices {
                if selector == "*" || selector == slot.sim.level_name {
                    slot.sim.scale_pcie(factor);
                    matched += 1;
                }
            }
        }
        matched
    }

    /// Scale the balancer's *belief* about matching devices without making
    /// them actually faster: the static speed-table entry is multiplied by
    /// `factor`, but kernels still take their physical time. Isolates how
    /// much of performance is placement quality vs raw device speed.
    pub fn scale_balancer_table(&mut self, selector: &str, factor: f64) -> usize {
        let mut matched = 0;
        for nd in &mut self.nodes {
            for (didx, slot) in nd.devices.iter().enumerate() {
                if selector == "*" || selector == slot.sim.level_name {
                    nd.balancer.scale_speed(didx, factor);
                    matched += 1;
                }
            }
        }
        matched
    }

    fn lanes_for(trace: &mut Trace, node: usize, dev_name: &str, dev_idx: usize) -> DevLanes {
        let base = format!("n{node}.{dev_name}{dev_idx}");
        DevLanes {
            h2d: trace.add_lane(format!("{base}.h2d")),
            exec: trace.add_lane(format!("{base}.exec")),
            d2h: trace.add_lane(format!("{base}.d2h")),
        }
    }

    /// Permanently retire device `didx` of `nd` at virtual time `at`: pull
    /// its engine timelines back to `at` (work beyond the failure never
    /// happens), release every buffer, forget pending completions, and
    /// remove it from the balancer.
    fn kill_device(nd: &mut NodeDevices, didx: usize, at: SimTime, report: &mut RunReport) {
        let slot = &mut nd.devices[didx];
        slot.dead = true;
        slot.sim.abort_after(at);
        for (_, id) in slot.allocations.drain(..) {
            slot.sim.memory.free(id);
        }
        for (_, id) in slot.resident.drain() {
            slot.sim.memory.free(id);
        }
        nd.pending.retain(|p| p.1 != didx);
        nd.balancer.retire_device(didx);
        report.devices_lost += 1;
    }

    /// Append one decision to the audit log (tracing runs only).
    fn push_audit(
        &mut self,
        node: usize,
        call: &KernelCall,
        submit_at: SimTime,
        candidates: Vec<DeviceEstimate>,
        chosen: Option<usize>,
        reason: &str,
    ) {
        self.audit.push(AuditEntry {
            seq: self.audit.len() as u64,
            node,
            kernel: call.kernel.clone(),
            submit_ns: submit_at.as_nanos(),
            policy: self.nodes[node].balancer.describe_policy(),
            candidates,
            chosen,
            reason: reason.to_string(),
        });
    }

    /// Execute one device job: balancer choice, transfers, kernel. Returns
    /// `(completion_time, output)`.
    ///
    /// Faults enter here in three ways: devices whose injected death is due
    /// are retired before the choice; a transient launch fault costs a
    /// retry (bounded budget, then `leafCPU`); and a job that would still
    /// be on a device when that device dies is aborted and resubmitted to
    /// the survivors (or the CPU).
    #[allow(clippy::too_many_arguments)]
    fn run_device_job<A: CashmereApp>(
        &mut self,
        app: &A,
        node: usize,
        job: &A::Input,
        submit_at: SimTime,
        cpu_cursor: &mut SimTime,
        trace: &mut Trace,
        metrics: &mut MetricsRegistry,
        parent_span: SpanId,
        faults: &mut FaultInjector,
        report: &mut RunReport,
    ) -> (SimTime, A::Output) {
        const LAUNCH_RETRY_BUDGET: u32 = 3;
        let launch_retry_penalty = SimTime::from_micros(50);

        let call = app.kernel_call(job);
        let mut submit_at = submit_at;
        let mut launch_attempts = 0u32;
        loop {
            let nd = &mut self.nodes[node];
            // Retire every device whose injected death is due by now.
            for d in 0..nd.devices.len() {
                if !nd.devices[d].dead {
                    if let Some(death) = faults.device_death(node, d) {
                        if death <= submit_at {
                            Self::kill_device(nd, d, death, report);
                        }
                    }
                }
            }
            nd.reap(submit_at);

            // Devices that actually have an applicable kernel version.
            let kernel_ok: Vec<bool> = nd
                .devices
                .iter()
                .map(|d| self.registry.select(&call.kernel, d.sim.level).is_some())
                .collect();
            let allowed: Vec<bool> = kernel_ok
                .iter()
                .zip(&nd.devices)
                .map(|(ok, d)| *ok && !d.dead)
                .collect();

            // Snapshot the candidate table before the choice (the audit log
            // must show what the rule saw, not the post-submit queues).
            let candidates = trace
                .enabled()
                .then(|| nd.balancer.explain(&call.kernel, &allowed));

            let chosen = nd.balancer.choose_among(&call.kernel, &allowed);
            let Some(didx) = chosen else {
                // No device can run this kernel: leafCPU fallback,
                // serialized on the managing core. Attribute it to faults
                // when a lost device would otherwise have qualified.
                if kernel_ok
                    .iter()
                    .zip(&nd.devices)
                    .any(|(ok, d)| *ok && d.dead)
                {
                    report.fault_cpu_fallbacks += 1;
                }
                self.cpu_fallbacks += 1;
                if let Some(candidates) = candidates {
                    self.push_audit(node, &call, submit_at, candidates, None, "no-usable-device");
                }
                let (cpu, out) = app.leaf_cpu(job);
                let done = (*cpu_cursor).max(submit_at) + cpu;
                *cpu_cursor = done;
                return (done, out);
            };

            // Transient launch fault (the paper's try/catch around
            // MCL.launch()): pay a driver round-trip and retry; degrade to
            // the CPU leaf once the budget is spent.
            if faults.launch_fault(node, didx, submit_at) {
                report.launch_retries += 1;
                launch_attempts += 1;
                if launch_attempts >= LAUNCH_RETRY_BUDGET {
                    report.fault_cpu_fallbacks += 1;
                    self.cpu_fallbacks += 1;
                    if let Some(candidates) = candidates {
                        self.push_audit(
                            node,
                            &call,
                            submit_at,
                            candidates,
                            None,
                            "launch-fault-budget",
                        );
                    }
                    let (cpu, out) = app.leaf_cpu(job);
                    let done = (*cpu_cursor).max(submit_at) + cpu;
                    *cpu_cursor = done;
                    return (done, out);
                }
                submit_at += launch_retry_penalty;
                continue;
            }

            let (done, out, placed) = match self.schedule_on_device(
                app,
                node,
                didx,
                job,
                &call,
                submit_at,
                cpu_cursor,
                trace,
                metrics,
                parent_span,
                faults,
                report,
            ) {
                Ok(done_out) => done_out,
                Err(resubmit_at) => {
                    // The chosen device dies while this job would still be
                    // on it: the job is lost and resubmitted to survivors.
                    submit_at = submit_at.max(resubmit_at);
                    continue;
                }
            };
            if let Some(candidates) = candidates {
                if placed {
                    self.push_audit(node, &call, submit_at, candidates, Some(didx), "placed");
                } else {
                    self.push_audit(node, &call, submit_at, candidates, None, "memory-exhausted");
                }
            }
            return (done, out);
        }
    }

    /// Place one device job on the chosen device. Returns
    /// `Err(death_time)` when the device's injected death aborts the job
    /// in flight; `Ok((completion, output, placed))` otherwise, where
    /// `placed` is false when memory exhaustion degraded the job to the CPU
    /// leaf (pre-existing model behavior).
    #[allow(clippy::too_many_arguments)]
    fn schedule_on_device<A: CashmereApp>(
        &mut self,
        app: &A,
        node: usize,
        didx: usize,
        job: &A::Input,
        call: &KernelCall,
        submit_at: SimTime,
        cpu_cursor: &mut SimTime,
        trace: &mut Trace,
        metrics: &mut MetricsRegistry,
        parent_span: SpanId,
        faults: &mut FaultInjector,
        report: &mut RunReport,
    ) -> Result<(SimTime, A::Output, bool), SimTime> {
        let _prof = prof::scope("cashmere::place");
        let nd = &mut self.nodes[node];
        // Device memory for inputs and outputs. "Cashmere automatically
        // manages the available memory on a device": under memory pressure
        // a job waits until earlier jobs' buffers are released (their d2h
        // finished); only a job that cannot fit even on an idle device
        // falls back to the CPU leaf.
        let needed = call.h2d_bytes + call.d2h_bytes;
        let mut effective_submit = submit_at;
        let mut resident_upload = 0u64;
        {
            let slot = &mut nd.devices[didx];
            // First job of this kernel on this device uploads the resident
            // data (kept for the rest of the run).
            let resident_needed =
                if call.resident_bytes > 0 && !slot.resident.contains_key(&call.kernel) {
                    call.resident_bytes
                } else {
                    0
                };
            loop {
                // Reclaim everything that has drained by now.
                let mut i = 0;
                while i < slot.allocations.len() {
                    if slot.allocations[i].0 <= effective_submit {
                        let (_, id) = slot.allocations.swap_remove(i);
                        slot.sim.memory.free(id);
                    } else {
                        i += 1;
                    }
                }
                if slot.sim.memory.fits(needed + resident_needed) {
                    break;
                }
                // Wait for the earliest in-flight job to leave the device.
                match slot.allocations.iter().map(|(t, _)| *t).min() {
                    Some(t) => effective_submit = effective_submit.max(t),
                    None => {
                        // Even an idle device cannot hold this job.
                        self.cpu_fallbacks += 1;
                        let (cpu, out) = app.leaf_cpu(job);
                        let done = (*cpu_cursor).max(submit_at) + cpu;
                        *cpu_cursor = done;
                        return Ok((done, out, false));
                    }
                }
            }
            if resident_needed > 0 {
                let id = slot
                    .sim
                    .memory
                    .alloc(resident_needed)
                    .expect("checked fit above");
                slot.resident.insert(call.kernel.clone(), id);
                resident_upload = resident_needed;
            }
        }

        // Interpret the kernel: fully (functional) or sampled+memoized.
        let device_level = nd.devices[didx].sim.level;
        let (level, cfg) = {
            let ck = self
                .registry
                .select(&call.kernel, device_level)
                .expect("allowed device has a version");
            (
                ck.level,
                LaunchConfig::for_device(ck, self.registry.hierarchy(), device_level),
            )
        };
        let key = StatsKey {
            kernel: call.kernel.clone(),
            level,
            group_size: cfg.group_size,
            warp_width: cfg.warp_width,
            shape: arg_shape(&call.args),
        };

        // The memo stores *unscaled* statistics; calibration scaling is
        // applied per call (jobs with the same shape may calibrate
        // differently).
        let (args_back, stats) = if !self.config.functional {
            let mode = ExecMode::Sampled {
                sampling: self.registry.default_sampling,
                extra_scale: 1.0,
            };
            let cached = self.registry.cached_stats(&key);
            let mut stats = match cached {
                Some(cached) => {
                    report.kernel_memo_hits += 1;
                    cached
                }
                None => {
                    report.kernel_memo_misses += 1;
                    let ck = self
                        .registry
                        .select(&call.kernel, device_level)
                        .expect("allowed device has a version");
                    let run = nd.devices[didx]
                        .sim
                        .run_kernel(self.registry.hierarchy(), ck, call.args.clone(), mode)
                        .unwrap_or_else(|e| panic!("kernel `{}` failed: {e}", call.kernel));
                    self.registry.cache_stats(key.clone(), run.stats.clone());
                    run.stats
                }
            };
            if call.extra_scale != 1.0 {
                stats.scale(call.extra_scale);
            }
            (call.args.clone(), stats)
        } else {
            let ck = self
                .registry
                .select(&call.kernel, device_level)
                .expect("allowed device has a version");
            let run = nd.devices[didx]
                .sim
                .run_kernel(
                    self.registry.hierarchy(),
                    ck,
                    call.args.clone(),
                    ExecMode::Full,
                )
                .unwrap_or_else(|e| panic!("kernel `{}` failed: {e}", call.kernel));
            (run.args, run.stats)
        };

        let nd = &mut self.nodes[node];
        let slot = &mut nd.devices[didx];
        let cost = estimate_time(&stats, &slot.sim.params, cfg.class);
        // Costs are physical; the advisor's virtual speed scale applies at
        // readout, same as `SimDevice::run_kernel` (this cached-stats path
        // bypasses it).
        let kernel_time = SimTime::from_secs_f64(cost.total_s / slot.sim.speed_scale);

        // Reserve memory until the job leaves the device.
        // Timelines: h2d from submission; exec after the copy; d2h after.
        // With overlap disabled (ablation), every phase runs on the exec
        // engine, so transfers block kernels of other jobs.
        let (h2d_s, h2d_e, ex_s, ex_e, dh_s, dh_e) = if self.config.overlap {
            let (h2d_s, h2d_e) = slot
                .sim
                .schedule_h2d(effective_submit, call.h2d_bytes + resident_upload);
            let (ex_s, ex_e) = slot.sim.schedule_exec(h2d_e, kernel_time);
            let (dh_s, dh_e) = slot.sim.schedule_d2h(ex_e, call.d2h_bytes);
            (h2d_s, h2d_e, ex_s, ex_e, dh_s, dh_e)
        } else {
            let h2d_time = slot.sim.transfer_time(call.h2d_bytes + resident_upload);
            let d2h_time = slot.sim.transfer_time(call.d2h_bytes);
            let (h2d_s, h2d_e) = slot.sim.schedule_exec(effective_submit, h2d_time);
            let (ex_s, ex_e) = slot.sim.schedule_exec(h2d_e, kernel_time);
            let (dh_s, dh_e) = slot.sim.schedule_exec(ex_e, d2h_time);
            (h2d_s, h2d_e, ex_s, ex_e, dh_s, dh_e)
        };

        // The device dies before this job drains: the partial device time
        // is recovery cost, the device is retired, and the caller resubmits
        // the job to the survivors.
        if let Some(death) = faults.device_death(node, didx) {
            if death < dh_e {
                report.device_aborts += 1;
                report.recovery_time += death.saturating_sub(h2d_s);
                Self::kill_device(nd, didx, death, report);
                return Err(death);
            }
        }

        let slot = &mut nd.devices[didx];
        if let Ok(id) = slot.sim.memory.alloc(needed) {
            slot.allocations.push((dh_e, id));
        }
        slot.jobs_run += 1;
        self.kernels_run += 1;

        if trace.enabled() {
            let lanes = match slot.lanes {
                Some(l) => l,
                None => {
                    let l = Self::lanes_for(trace, node, &slot.sim.level_name, didx);
                    slot.lanes = Some(l);
                    l
                }
            };
            // Causal chain of the device job: the node-level leaf span
            // fathers the h2d copy, which fathers the kernel, which fathers
            // the d2h copy — lineage a flow arrow can follow end to end.
            let h2d_span = trace.record_child(
                lanes.h2d,
                SpanKind::CopyToDevice,
                call.kernel.clone(),
                h2d_s,
                h2d_e,
                parent_span,
            );
            let exec_span = trace.record_child(
                lanes.exec,
                SpanKind::Kernel,
                call.kernel.clone(),
                ex_s,
                ex_e,
                h2d_span,
            );
            trace.record_child(
                lanes.d2h,
                SpanKind::CopyFromDevice,
                call.kernel.clone(),
                dh_s,
                dh_e,
                exec_span,
            );
        }
        metrics.observe("pcie.h2d", h2d_e - h2d_s);
        metrics.observe("kernel.exec", ex_e - ex_s);
        metrics.observe("pcie.d2h", dh_e - dh_s);

        nd.balancer.on_submit(didx);
        if metrics.enabled() {
            metrics.gauge_set(
                &format!("n{node}.dev{didx}.queue"),
                effective_submit,
                nd.balancer.queued(didx) as f64,
            );
        }
        nd.pending
            .push((call.kernel.clone(), didx, kernel_time, dh_e));

        Ok((dh_e, app.job_output(job, args_back), true))
    }
}

impl<A: CashmereApp> LeafRuntime<A> for CashmereLeafRuntime {
    fn plan(&mut self, app: &A, input: &A::Input, ctx: LeafCtx<'_>) -> LeafPlan<A::Output> {
        let LeafCtx {
            node,
            now,
            trace,
            metrics,
            cpu_lane: _,
            parent_span,
            faults,
            report,
        } = ctx;
        let jobs = app.device_jobs(input);
        assert!(!jobs.is_empty(), "device_jobs must be non-empty");
        let mut submit = now;
        let mut done = now;
        let mut cpu_cursor = now;
        let mut outputs = Vec::with_capacity(jobs.len());
        for job in &jobs {
            submit += self.config.submit_overhead;
            let (d, out) = self.run_device_job(
                app,
                node,
                job,
                submit,
                &mut cpu_cursor,
                trace,
                metrics,
                parent_span,
                faults,
                report,
            );
            done = done.max(d);
            outputs.push(out);
        }
        let output = if jobs.len() == 1 {
            outputs.pop().expect("one output")
        } else {
            app.combine(input, outputs)
        };
        // The managing core blocks until the last device job returns
        // (MCL.launch() is blocking), giving natural backpressure.
        LeafPlan::Cpu {
            compute: done - now,
            output,
        }
    }

    /// Node crash: the node's device state dies with it. Pull every engine
    /// timeline back to the crash instant (work past it never happens),
    /// release all buffers, and forget pending completions. Injected device
    /// deaths (`dead`) are permanent hardware facts and stay marked.
    fn on_node_crash(&mut self, node: usize, at: SimTime) {
        let Some(nd) = self.nodes.get_mut(node) else {
            return;
        };
        for slot in &mut nd.devices {
            slot.sim.abort_after(at);
            for (_, id) in slot.allocations.drain(..) {
                slot.sim.memory.free(id);
            }
            for (_, id) in slot.resident.drain() {
                slot.sim.memory.free(id);
            }
        }
        nd.pending.clear();
    }

    /// Node (re)join: the node's runtime process restarts, so its devices
    /// re-register with a balancer rebuilt from the static speed table —
    /// measured kernel times are deliberately forgotten (the restarted
    /// process re-measures). Devices killed by an injected death stay
    /// retired across the reboot.
    fn on_node_join(&mut self, node: usize, _at: SimTime) {
        let Some(nd) = self.nodes.get_mut(node) else {
            return;
        };
        let speeds: Vec<f64> = nd
            .devices
            .iter()
            .map(|s| s.sim.params.relative_speed)
            .collect();
        let mut balancer = Balancer::new(&speeds);
        balancer.set_policy(self.config.balancer_policy);
        for (didx, slot) in nd.devices.iter().enumerate() {
            if slot.dead {
                balancer.retire_device(didx);
            }
        }
        nd.balancer = balancer;
        nd.pending.clear();
    }

    /// Flight-recorder gauges: the balancer's cumulative placement mix —
    /// device jobs run per device class across the cluster, plus CPU
    /// fallbacks. Aggregated through a sorted map so column order is
    /// independent of node/slot enumeration order.
    fn probe(&self, out: &mut Vec<(String, f64)>) {
        let mut per_class: std::collections::BTreeMap<&str, u64> =
            std::collections::BTreeMap::new();
        for nd in &self.nodes {
            for slot in &nd.devices {
                *per_class.entry(slot.sim.level_name.as_str()).or_insert(0) += slot.jobs_run;
            }
        }
        for (class, jobs) in per_class {
            out.push((format!("placed.{class}"), jobs as f64));
        }
        out.push(("placed.cpu".into(), self.cpu_fallbacks as f64));
    }
}
