//! Balancer counterfactuals: replay the audit log under a perturbed speed
//! table and report which placements flip.
//!
//! The audit log (PR 2) records, for every device-job decision, the exact
//! candidate table the Sec. III-B scenario rule evaluated — per-device
//! queue depths and time estimates at decision time. That is enough to
//! re-run the *decision* (not the whole simulation) under a counterfactual
//! "device X is f× faster" table: divide X's estimates by f, recompute each
//! candidate's scenario makespan `max_e (queued_e + [e==d]) · t_e`, and
//! take the argmin again. A flip means the placement was sensitive to that
//! device's speed — the advisor prints these next to its measured what-if
//! deltas, because a large measured delta with many flips says "the win
//! comes from re-routing", while a large delta with zero flips says "the
//! same jobs simply run faster".

use crate::balancer::Policy;
use crate::runtime::AuditEntry;
use serde::{Deserialize, Serialize};

/// One decision that would have gone elsewhere under the perturbed table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlacementFlip {
    /// Audit sequence number of the decision.
    pub seq: u64,
    pub node: usize,
    pub kernel: String,
    /// Device the job actually ran on.
    pub from: usize,
    /// Device the perturbed table would have chosen.
    pub to: usize,
}

/// Outcome of replaying one audit log under one perturbed table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CounterfactualReplay {
    /// Audit entries seen.
    pub decisions: usize,
    /// Entries actually replayed: scenario-policy decisions that placed a
    /// job on a device (CPU fallbacks and ablation policies are skipped —
    /// their choice does not depend on the speed table).
    pub replayed: usize,
    /// Decisions whose argmin moved, in audit order.
    pub flips: Vec<PlacementFlip>,
}

impl CounterfactualReplay {
    /// `flips / replayed` in percent (0 when nothing was replayable).
    pub fn flip_pct(&self) -> f64 {
        if self.replayed == 0 {
            0.0
        } else {
            100.0 * self.flips.len() as f64 / self.replayed as f64
        }
    }
}

/// Replay every scenario-policy decision of `audit` with each device's time
/// estimate divided by `factor(node, device)` (1.0 = unperturbed), and
/// collect the placements that flip. Deterministic: ties break toward the
/// lower device index, exactly like [`crate::balancer::Balancer`].
pub fn replay_audit(
    audit: &[AuditEntry],
    factor: impl Fn(usize, usize) -> f64,
) -> CounterfactualReplay {
    let mut replayed = 0usize;
    let mut flips = Vec::new();
    for e in audit {
        // Only scenario-policy decisions depend on the speed table; match
        // on the recorded descriptor name so legacy string-form entries
        // (normalized on load) replay too.
        if e.policy.name != Policy::Scenario.name() {
            continue;
        }
        let Some(chosen) = e.chosen else {
            continue;
        };
        if e.candidates.is_empty() {
            continue;
        }
        replayed += 1;
        // Perturbed per-device estimates; dead devices keep no estimate.
        let times: Vec<Option<f64>> = e
            .candidates
            .iter()
            .map(|c| {
                let f = factor(e.node, c.device);
                debug_assert!(f.is_finite() && f > 0.0, "bad counterfactual factor");
                (!c.dead).then(|| c.estimate_s / f)
            })
            .collect();
        let mut best: Option<(usize, f64)> = None;
        for c in &e.candidates {
            if c.dead || !c.allowed {
                continue;
            }
            let mut scenario: f64 = 0.0;
            for (other, t) in e.candidates.iter().zip(&times) {
                let Some(t) = t else { continue };
                let q = other.queued + usize::from(other.device == c.device);
                scenario = scenario.max(q as f64 * t);
            }
            match best {
                Some((_, v)) if v <= scenario => {}
                _ => best = Some((c.device, scenario)),
            }
        }
        if let Some((to, _)) = best {
            if to != chosen {
                flips.push(PlacementFlip {
                    seq: e.seq,
                    node: e.node,
                    kernel: e.kernel.clone(),
                    from: chosen,
                    to,
                });
            }
        }
    }
    CounterfactualReplay {
        decisions: audit.len(),
        replayed,
        flips,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balancer::{DeviceEstimate, PolicyDesc};

    fn entry(seq: u64, candidates: Vec<DeviceEstimate>, chosen: Option<usize>) -> AuditEntry {
        AuditEntry {
            seq,
            node: 0,
            kernel: "k".into(),
            submit_ns: 0,
            policy: PolicyDesc::default(),
            candidates,
            chosen,
            reason: "placed".into(),
        }
    }

    fn cand(device: usize, queued: usize, estimate_s: f64) -> DeviceEstimate {
        DeviceEstimate {
            device,
            queued,
            estimate_s,
            measured: true,
            dead: false,
            allowed: true,
            scenario_s: None,
        }
    }

    /// The paper's Sec. III-B example: K20 queue 3 × 100 ms, GTX480 queue
    /// 1 × 125 ms → the job goes to the GTX480. Make the K20 2× faster and
    /// the decision flips back to it.
    #[test]
    fn paper_example_flips_when_k20_doubles() {
        let audit = vec![entry(
            0,
            vec![cand(0, 3, 0.100), cand(1, 1, 0.125)],
            Some(1),
        )];
        // Unperturbed replay reproduces the recorded choice: no flips.
        let same = replay_audit(&audit, |_, _| 1.0);
        assert_eq!(same.replayed, 1);
        assert!(same.flips.is_empty());
        // K20 (device 0) 2× faster: scenario0 = max(4·50, 125) = 200 vs
        // scenario1 = max(3·50, 2·125) = 250 → flip to device 0.
        let fast = replay_audit(&audit, |_, d| if d == 0 { 2.0 } else { 1.0 });
        assert_eq!(fast.flips.len(), 1);
        let f = &fast.flips[0];
        assert_eq!((f.from, f.to), (1, 0));
        assert!((fast.flip_pct() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn fallbacks_and_dead_devices_are_skipped() {
        let mut dead = cand(0, 0, 0.1);
        dead.dead = true;
        dead.allowed = false;
        let audit = vec![
            entry(0, vec![], None), // CPU fallback: nothing to replay
            entry(1, vec![dead, cand(1, 0, 0.2)], Some(1)),
        ];
        // Even an extreme factor on the dead device cannot flip anything.
        let r = replay_audit(&audit, |_, d| if d == 0 { 100.0 } else { 1.0 });
        assert_eq!(r.decisions, 2);
        assert_eq!(r.replayed, 1);
        assert!(r.flips.is_empty());
    }
}
