//! A serialized engine timeline: one DMA channel or one execution engine.
//!
//! Work items queue FIFO behind each other; asking to run a span of a given
//! duration at `now` returns the actual `(start, end)` and advances the
//! engine's busy horizon. Busy time is accumulated for utilization reports.

use cashmere_des::SimTime;
use serde::{Deserialize, Serialize};

/// A single serialized engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timeline {
    free_at: SimTime,
    busy_total: SimTime,
    items: u64,
}

impl Timeline {
    pub fn new() -> Timeline {
        Timeline::default()
    }

    /// When the engine can next start new work.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Is the engine idle at `now`?
    pub fn idle_at(&self, now: SimTime) -> bool {
        self.free_at <= now
    }

    /// Enqueue a span of `duration` requested at `now`; returns actual
    /// `(start, end)`.
    pub fn schedule(&mut self, now: SimTime, duration: SimTime) -> (SimTime, SimTime) {
        let start = now.max(self.free_at);
        let end = start + duration;
        self.free_at = end;
        self.busy_total += duration;
        self.items += 1;
        (start, end)
    }

    /// Abort everything scheduled beyond `at` (a device failure): the busy
    /// horizon is pulled back to `at` and the aborted span is returned so
    /// callers can account the lost work. Time already spent before `at`
    /// stays counted. Returns zero if the engine was idle at `at`.
    pub fn truncate_at(&mut self, at: SimTime) -> SimTime {
        if self.free_at <= at {
            return SimTime::ZERO;
        }
        let aborted = self.free_at - at;
        self.free_at = at;
        self.busy_total = self.busy_total.saturating_sub(aborted);
        aborted
    }

    /// Total busy time accumulated.
    pub fn busy_total(&self) -> SimTime {
        self.busy_total
    }

    /// Number of items executed.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Utilization over `[0, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            0.0
        } else {
            (self.busy_total.as_secs_f64() / now.as_secs_f64()).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimTime {
        SimTime::from_micros(v)
    }

    #[test]
    fn fifo_serialization() {
        let mut t = Timeline::new();
        let (s1, e1) = t.schedule(us(0), us(10));
        assert_eq!((s1, e1), (us(0), us(10)));
        // Requested at t=5 but engine busy until 10.
        let (s2, e2) = t.schedule(us(5), us(10));
        assert_eq!((s2, e2), (us(10), us(20)));
        // Requested after the engine went idle.
        let (s3, _) = t.schedule(us(50), us(1));
        assert_eq!(s3, us(50));
        assert_eq!(t.items(), 3);
        assert_eq!(t.busy_total(), us(21));
    }

    #[test]
    fn utilization_bounded() {
        let mut t = Timeline::new();
        t.schedule(us(0), us(50));
        assert!((t.utilization(us(100)) - 0.5).abs() < 1e-12);
        assert_eq!(t.utilization(SimTime::ZERO), 0.0);
        assert!(t.utilization(us(10)) <= 1.0);
    }

    #[test]
    fn truncate_aborts_in_flight_work() {
        let mut t = Timeline::new();
        t.schedule(us(0), us(10));
        t.schedule(us(0), us(10)); // queued behind: [10, 20)
                                   // Failure at t=14: the tail of the second item (6 µs) is aborted.
        assert_eq!(t.truncate_at(us(14)), us(6));
        assert_eq!(t.free_at(), us(14));
        assert_eq!(t.busy_total(), us(14));
        // Idle engine: nothing to abort.
        assert_eq!(t.truncate_at(us(20)), SimTime::ZERO);
        assert_eq!(t.free_at(), us(14));
    }

    #[test]
    fn idle_query() {
        let mut t = Timeline::new();
        assert!(t.idle_at(us(0)));
        t.schedule(us(0), us(10));
        assert!(!t.idle_at(us(5)));
        assert!(t.idle_at(us(10)));
    }
}
