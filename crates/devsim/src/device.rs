//! A simulated many-core device: PCIe DMA engines, execution engine,
//! memory, and functional+timed kernel execution.

use crate::memory::DeviceMemory;
use crate::timeline::Timeline;
use cashmere_des::obs::prof;
use cashmere_des::SimTime;
use cashmere_hwdesc::params::ResolvedParams;
use cashmere_hwdesc::{Hierarchy, LevelId};
use cashmere_mcl::cost::{estimate_time, CostBreakdown, DeviceClass};
use cashmere_mcl::interp::{ExecError, ExecOptions, Sampling};
use cashmere_mcl::launch::LaunchConfig;
use cashmere_mcl::stats::KernelStats;
use cashmere_mcl::value::ArgValue;
use cashmere_mcl::vm::{default_engine, execute_with_engine};
use cashmere_mcl::CheckedKernel;

/// Device global-memory capacities in GiB (published card specs).
fn memory_gib(level_name: &str) -> u64 {
    match level_name {
        "gtx480" => 1, // 1.5 GiB rounded down
        "c2050" => 3,
        "gtx680" => 2,
        "k20" => 5,
        "titan" => 6,
        "hd7970" => 3,
        "xeon_phi" => 8,
        _ => 2,
    }
}

/// How a kernel run should execute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecMode {
    /// Interpret every lane; arguments are really computed.
    Full,
    /// Interpret a sample and extrapolate; `extra_scale` additionally
    /// multiplies all counters (for calibration runs whose inner dimensions
    /// were shrunk relative to the real problem).
    Sampled {
        sampling: Sampling,
        extra_scale: f64,
    },
}

impl ExecMode {
    pub fn sampled() -> ExecMode {
        ExecMode::Sampled {
            sampling: Sampling::default(),
            extra_scale: 1.0,
        }
    }
}

/// Result of one kernel execution on a device.
#[derive(Debug)]
pub struct KernelRun {
    /// Arguments after execution (mutated in `Full` mode).
    pub args: Vec<ArgValue>,
    pub stats: KernelStats,
    pub cost: CostBreakdown,
    /// Virtual execution time on this device.
    pub time: SimTime,
}

/// A simulated many-core device instance.
#[derive(Debug, Clone)]
pub struct SimDevice {
    pub level: LevelId,
    pub level_name: String,
    pub params: ResolvedParams,
    pub class: DeviceClass,
    /// Host→device DMA engine.
    pub h2d: Timeline,
    /// Device→host DMA engine.
    pub d2h: Timeline,
    /// Kernel execution engine.
    pub exec: Timeline,
    pub memory: DeviceMemory,
    /// Virtual compute-speed scale (advisor what-if experiments): kernel
    /// times divide by this. 1.0 = the device as described.
    pub speed_scale: f64,
    /// Virtual PCIe scale: transfer bandwidth multiplies by this, latency
    /// divides. 1.0 = the link as described.
    pub pcie_scale: f64,
}

impl SimDevice {
    /// Instantiate the device described by leaf level `level`.
    pub fn new(h: &Hierarchy, level: LevelId) -> Result<SimDevice, String> {
        let params = h.device_params(level)?;
        let name = h.name(level).to_string();
        let class = DeviceClass::of(h, level);
        let mem = DeviceMemory::new(memory_gib(&name) << 30);
        Ok(SimDevice {
            level,
            level_name: name,
            params,
            class,
            h2d: Timeline::new(),
            d2h: Timeline::new(),
            exec: Timeline::new(),
            memory: mem,
            speed_scale: 1.0,
            pcie_scale: 1.0,
        })
    }

    /// Virtually scale this device's compute rate (advisor what-if):
    /// `factor` 2.0 halves every kernel time from now on. Compounds with
    /// earlier calls.
    pub fn scale_speed(&mut self, factor: f64) {
        assert!(factor.is_finite() && factor > 0.0, "bad speed factor");
        self.speed_scale *= factor;
    }

    /// Virtually scale this device's PCIe link (advisor what-if):
    /// bandwidth × `factor`, latency ÷ `factor`. Compounds.
    pub fn scale_pcie(&mut self, factor: f64) {
        assert!(factor.is_finite() && factor > 0.0, "bad pcie factor");
        self.pcie_scale *= factor;
    }

    /// Construct by level name (convenience).
    pub fn by_name(h: &Hierarchy, name: &str) -> Result<SimDevice, String> {
        let level = h
            .id(name)
            .ok_or_else(|| format!("unknown device level `{name}`"))?;
        SimDevice::new(h, level)
    }

    /// Duration of a PCIe transfer of `bytes` (either direction), under the
    /// current virtual link scale.
    pub fn transfer_time(&self, bytes: u64) -> SimTime {
        let lat = SimTime::from_secs_f64(self.params.pcie_latency_us * 1e-6 / self.pcie_scale);
        lat + SimTime::from_secs_f64(bytes as f64 / (self.params.pcie_gbs * self.pcie_scale * 1e9))
    }

    /// Enqueue a host→device copy requested at `now`; returns `(start, end)`.
    pub fn schedule_h2d(&mut self, now: SimTime, bytes: u64) -> (SimTime, SimTime) {
        let d = self.transfer_time(bytes);
        self.h2d.schedule(now, d)
    }

    /// Enqueue a device→host copy requested at `now`.
    pub fn schedule_d2h(&mut self, now: SimTime, bytes: u64) -> (SimTime, SimTime) {
        let d = self.transfer_time(bytes);
        self.d2h.schedule(now, d)
    }

    /// Enqueue a kernel of known duration at `now`.
    pub fn schedule_exec(&mut self, now: SimTime, duration: SimTime) -> (SimTime, SimTime) {
        self.exec.schedule(now, duration)
    }

    /// The device fails permanently at `at`: every in-flight or queued
    /// segment on all three engines is aborted. Returns the total aborted
    /// engine time (the virtual-time cost of the work that was cut short),
    /// so callers can account it as recovery cost.
    pub fn abort_after(&mut self, at: SimTime) -> SimTime {
        self.h2d.truncate_at(at) + self.exec.truncate_at(at) + self.d2h.truncate_at(at)
    }

    /// When would a job whose transfers and kernel are already known finish,
    /// if submitted now? (Used by the load balancer for what-if queries —
    /// does not mutate the timelines.)
    pub fn completion_estimate(&self, now: SimTime, kernel_time: SimTime) -> SimTime {
        now.max(self.exec.free_at()) + kernel_time
    }

    /// Execute a checked kernel on this device: functional interpretation
    /// plus cost-model timing. The caller is responsible for scheduling the
    /// returned `time` onto [`SimDevice::schedule_exec`] (the Cashmere
    /// runtime does this so transfers can overlap).
    pub fn run_kernel(
        &self,
        h: &Hierarchy,
        ck: &CheckedKernel,
        args: Vec<ArgValue>,
        mode: ExecMode,
    ) -> Result<KernelRun, ExecError> {
        let _prof = prof::scope("mcl::execute");
        let cfg = LaunchConfig::for_device(ck, h, self.level);
        let opts: ExecOptions = match mode {
            ExecMode::Full => cfg.exec_full(),
            ExecMode::Sampled { sampling, .. } => cfg.exec_sampled(sampling),
        };
        let units: Vec<String> = h
            .effective_params(ck.level)
            .par_units
            .iter()
            .map(|p| p.name.clone())
            .collect();
        let result = execute_with_engine(default_engine(), ck, args, &units, &opts)?;
        let mut stats = result.stats;
        if let ExecMode::Sampled { extra_scale, .. } = mode {
            if extra_scale != 1.0 {
                stats.scale(extra_scale);
            }
        }
        let cost = estimate_time(&stats, &self.params, cfg.class);
        Ok(KernelRun {
            args: result.args,
            // The cost model describes the physical device; the virtual
            // speed scale (advisor what-if) applies to simulated time only.
            time: SimTime::from_secs_f64(cost.total_s / self.speed_scale),
            stats,
            cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cashmere_hwdesc::{standard_hierarchy, DeviceKind};
    use cashmere_mcl::compile;
    use cashmere_mcl::value::ArrayArg;
    use cashmere_mcl::ElemTy;

    fn gtx480() -> (cashmere_hwdesc::Hierarchy, SimDevice) {
        let h = standard_hierarchy();
        let d = SimDevice::by_name(&h, "gtx480").unwrap();
        (h, d)
    }

    #[test]
    fn devices_instantiate_with_published_memory() {
        let h = standard_hierarchy();
        for kind in DeviceKind::ALL {
            let d = SimDevice::new(&h, kind.level(&h)).unwrap();
            assert!(d.memory.capacity() >= 1 << 30, "{kind}");
            assert!(d.params.peak_sp_gflops() > 100.0);
        }
        assert!(SimDevice::by_name(&h, "bogus").is_err());
    }

    #[test]
    fn transfer_time_matches_pcie_params() {
        let (_, d) = gtx480();
        // 8 GB/s, 10 µs latency: 80 MB takes 10 ms + 10 µs.
        let t = d.transfer_time(80_000_000);
        assert!((t.as_secs_f64() - (0.010 + 10e-6)).abs() < 1e-9, "{t}");
    }

    #[test]
    fn dma_engines_are_independent_but_internally_fifo() {
        let (_, mut d) = gtx480();
        let now = SimTime::ZERO;
        let (s1, e1) = d.schedule_h2d(now, 8_000_000); // 1 ms + lat
        let (s2, _e2) = d.schedule_h2d(now, 8_000_000);
        assert_eq!(s1, now);
        assert_eq!(s2, e1, "same engine serializes");
        // d2h engine is free: copies overlap (paper Sec. II-C3)
        let (s3, _) = d.schedule_d2h(now, 8_000_000);
        assert_eq!(s3, now, "opposite direction overlaps");
        // exec engine also independent
        let (s4, _) = d.schedule_exec(now, SimTime::from_millis(5));
        assert_eq!(s4, now);
    }

    #[test]
    fn run_kernel_full_computes_and_times() {
        let (h, d) = gtx480();
        let ck = compile(
            "perfect void scale2(int n, float[n] a) {
  foreach (int i in n threads) { a[i] = a[i] * 2.0; }
}",
            &h,
        )
        .unwrap();
        let n = 1024u64;
        let a = ArrayArg::float(&[n], (0..n).map(|i| i as f64).collect());
        let run = d
            .run_kernel(
                &h,
                &ck,
                vec![ArgValue::Int(n as i64), ArgValue::Array(a)],
                ExecMode::Full,
            )
            .unwrap();
        let a = run.args[1].clone().array();
        assert_eq!(a.as_f64()[3], 6.0);
        assert!(run.time > SimTime::ZERO);
        assert!(run.cost.total_s >= 6e-6, "launch overhead floor");
    }

    #[test]
    fn sampled_run_scales_like_full() {
        let (h, d) = gtx480();
        let ck = compile(
            "perfect void scale2(int n, float[n] a) {
  foreach (int i in n threads) { a[i] = a[i] * 2.0; }
}",
            &h,
        )
        .unwrap();
        let n = 1 << 20;
        let mk = || {
            vec![
                ArgValue::Int(n as i64),
                ArgValue::Array(ArrayArg::phantom(ElemTy::Float, &[n])),
            ]
        };
        let full = d.run_kernel(&h, &ck, mk(), ExecMode::Full).unwrap();
        let sampled = d.run_kernel(&h, &ck, mk(), ExecMode::sampled()).unwrap();
        let rel = (sampled.cost.total_s - full.cost.total_s).abs() / full.cost.total_s;
        assert!(
            rel < 0.01,
            "sampled {} vs full {}",
            sampled.cost.total_s,
            full.cost.total_s
        );
        // and the sample interpreted far fewer lanes
        assert!(sampled.stats.raw_lanes * 100.0 < full.stats.raw_lanes);
    }

    #[test]
    fn extra_scale_multiplies_time() {
        let (h, d) = gtx480();
        let ck = compile(
            "perfect void touch(int n, float[n] a) {
  foreach (int i in n threads) { a[i] = a[i] + 1.0; }
}",
            &h,
        )
        .unwrap();
        let n = 1 << 22; // large enough that overhead is negligible
        let mk = || {
            vec![
                ArgValue::Int(n as i64),
                ArgValue::Array(ArrayArg::phantom(ElemTy::Float, &[n])),
            ]
        };
        let base = d.run_kernel(&h, &ck, mk(), ExecMode::sampled()).unwrap();
        let scaled = d
            .run_kernel(
                &h,
                &ck,
                mk(),
                ExecMode::Sampled {
                    sampling: Sampling::default(),
                    extra_scale: 10.0,
                },
            )
            .unwrap();
        let ratio =
            (scaled.cost.total_s - scaled.cost.launch_s) / (base.cost.total_s - base.cost.launch_s);
        assert!((ratio - 10.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn faster_devices_run_the_same_kernel_faster() {
        let h = standard_hierarchy();
        let ck = compile(
            "perfect void work(int n, float[n] a) {
  foreach (int i in n threads) {
    float x = a[i];
    for (int k = 0; k < 256; k++) { x += x * 0.5; }
    a[i] = x;
  }
}",
            &h,
        )
        .unwrap();
        let n = 1u64 << 22;
        let time_on = |name: &str| {
            let d = SimDevice::by_name(&h, name).unwrap();
            let args = vec![
                ArgValue::Int(n as i64),
                ArgValue::Array(ArrayArg::phantom(ElemTy::Float, &[n])),
            ];
            d.run_kernel(&h, &ck, args, ExecMode::sampled())
                .unwrap()
                .cost
                .total_s
        };
        let gtx480 = time_on("gtx480");
        let k20 = time_on("k20");
        let titan = time_on("titan");
        assert!(k20 < gtx480, "k20 {k20} vs gtx480 {gtx480}");
        assert!(titan <= k20, "titan {titan} vs k20 {k20}");
    }

    #[test]
    fn virtual_scales_divide_kernel_and_transfer_times() {
        let (h, mut d) = gtx480();
        let ck = compile(
            "perfect void scale2(int n, float[n] a) {
  foreach (int i in n threads) { a[i] = a[i] * 2.0; }
}",
            &h,
        )
        .unwrap();
        let n = 1u64 << 20;
        let mk = || {
            vec![
                ArgValue::Int(n as i64),
                ArgValue::Array(ArrayArg::phantom(ElemTy::Float, &[n])),
            ]
        };
        let base = d.run_kernel(&h, &ck, mk(), ExecMode::sampled()).unwrap();
        let base_xfer = d.transfer_time(80_000_000);
        d.scale_speed(2.0);
        d.scale_pcie(2.0);
        let fast = d.run_kernel(&h, &ck, mk(), ExecMode::sampled()).unwrap();
        // Kernel time halves; the cost breakdown itself stays physical.
        let ratio = base.time.as_secs_f64() / fast.time.as_secs_f64();
        assert!((ratio - 2.0).abs() < 1e-9, "ratio {ratio}");
        assert!((fast.cost.total_s - base.cost.total_s).abs() < 1e-12);
        // Transfers: bandwidth × 2 and latency ÷ 2 exactly halve the time.
        let fast_xfer = d.transfer_time(80_000_000);
        let xr = base_xfer.as_secs_f64() / fast_xfer.as_secs_f64();
        assert!((xr - 2.0).abs() < 1e-9, "xfer ratio {xr}");
        // Scales compound; a 0.5 undoes a 2.0.
        d.scale_speed(0.5);
        assert!((d.speed_scale - 1.0).abs() < 1e-12);
    }

    #[test]
    fn completion_estimate_accounts_for_queue() {
        let (_, mut d) = gtx480();
        let kt = SimTime::from_millis(10);
        assert_eq!(d.completion_estimate(SimTime::ZERO, kt), kt);
        d.schedule_exec(SimTime::ZERO, SimTime::from_millis(30));
        assert_eq!(
            d.completion_estimate(SimTime::ZERO, kt),
            SimTime::from_millis(40)
        );
    }
}
