//! Device global-memory management.
//!
//! "Cashmere automatically manages the available memory on a device"
//! (paper Sec. II-C3). This allocator tracks named buffers against the
//! device's capacity; the Cashmere runtime uses it to keep data resident
//! across multiple kernel launches (`Kernel.getDevice()` / `Device.copy()`)
//! and to fail cleanly — triggering the CPU fallback — when a job does not
//! fit. Out-of-core eviction (which the paper lists as unsupported) is left
//! as the natural extension point of [`DeviceMemory::free`].

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Handle to an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BufferId(pub u64);

/// Allocation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocError {
    pub requested: u64,
    pub available: u64,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "device out of memory: requested {} bytes, {} available",
            self.requested, self.available
        )
    }
}

impl std::error::Error for AllocError {}

/// Tracks allocations against a device's global-memory capacity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceMemory {
    capacity: u64,
    allocated: u64,
    next_id: u64,
    buffers: HashMap<BufferId, u64>,
    /// High-water mark, for reporting.
    peak: u64,
}

impl DeviceMemory {
    pub fn new(capacity_bytes: u64) -> DeviceMemory {
        DeviceMemory {
            capacity: capacity_bytes,
            allocated: 0,
            next_id: 0,
            buffers: HashMap::new(),
            peak: 0,
        }
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    pub fn available(&self) -> u64 {
        self.capacity - self.allocated
    }

    pub fn peak(&self) -> u64 {
        self.peak
    }

    pub fn live_buffers(&self) -> usize {
        self.buffers.len()
    }

    /// Allocate `bytes`; fails without side effects when it does not fit.
    pub fn alloc(&mut self, bytes: u64) -> Result<BufferId, AllocError> {
        if bytes > self.available() {
            return Err(AllocError {
                requested: bytes,
                available: self.available(),
            });
        }
        let id = BufferId(self.next_id);
        self.next_id += 1;
        self.allocated += bytes;
        self.peak = self.peak.max(self.allocated);
        self.buffers.insert(id, bytes);
        Ok(id)
    }

    /// Free a buffer. Freeing an unknown id is a no-op returning `false`.
    pub fn free(&mut self, id: BufferId) -> bool {
        match self.buffers.remove(&id) {
            Some(bytes) => {
                self.allocated -= bytes;
                true
            }
            None => false,
        }
    }

    /// Would an allocation of `bytes` succeed right now?
    pub fn fits(&self, bytes: u64) -> bool {
        bytes <= self.available()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free_roundtrip() {
        let mut m = DeviceMemory::new(1000);
        let a = m.alloc(400).unwrap();
        let b = m.alloc(500).unwrap();
        assert_eq!(m.allocated(), 900);
        assert_eq!(m.available(), 100);
        assert_eq!(m.live_buffers(), 2);
        assert!(m.free(a));
        assert_eq!(m.allocated(), 500);
        assert!(m.free(b));
        assert_eq!(m.allocated(), 0);
        assert_eq!(m.peak(), 900);
    }

    #[test]
    fn oom_is_clean() {
        let mut m = DeviceMemory::new(100);
        let _a = m.alloc(80).unwrap();
        let err = m.alloc(30).unwrap_err();
        assert_eq!(err.requested, 30);
        assert_eq!(err.available, 20);
        // failed alloc has no side effects
        assert_eq!(m.allocated(), 80);
        assert!(m.fits(20));
        assert!(!m.fits(21));
    }

    #[test]
    fn double_free_is_noop() {
        let mut m = DeviceMemory::new(100);
        let a = m.alloc(10).unwrap();
        assert!(m.free(a));
        assert!(!m.free(a));
        assert_eq!(m.allocated(), 0);
    }

    #[test]
    fn ids_are_unique() {
        let mut m = DeviceMemory::new(100);
        let a = m.alloc(10).unwrap();
        m.free(a);
        let b = m.alloc(10).unwrap();
        assert_ne!(a, b);
    }
}
