//! # cashmere-devsim — many-core device simulator
//!
//! Substitutes for the paper's physical accelerators (GTX480 … Xeon Phi).
//! A [`SimDevice`] owns three timelines — host→device DMA, device→host DMA,
//! and kernel execution — mirroring how real GPUs overlap PCIe transfers
//! with compute (paper Sec. II-C3), plus a [`memory::DeviceMemory`] manager
//! ("Cashmere automatically manages the available memory on a device").
//!
//! Kernel execution is functional *and* timed: the MCPL interpreter from
//! [`cashmere_mcl`] runs the kernel (fully for correctness, sampled for
//! paper-scale measurement) and the roofline cost model converts the
//! collected statistics into virtual execution time on this specific
//! device.

pub mod device;
pub mod memory;
pub mod timeline;

pub use device::{ExecMode, KernelRun, SimDevice};
pub use memory::{AllocError, BufferId, DeviceMemory};
pub use timeline::Timeline;
