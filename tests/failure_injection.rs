//! Randomized failure injection: whatever node crashes at whatever time,
//! and whatever a (survivable) fault plan throws at the cluster — crashed
//! nodes, lossy links, latency spikes — Satin's recovery must still deliver
//! the exact answer (paper Sec. II-A: "Satin recovers from nodes that are
//! no longer responding"), and fault runs must replay byte-for-byte.

use cashmere_des::fault::{FaultPlan, LinkFault, NodeCrash, NodeJoin};
use cashmere_des::SimTime;
use cashmere_satin::{ClusterApp, ClusterSim, CpuLeafRuntime, DcStep, SimConfig};
use proptest::prelude::*;

struct SumApp {
    grain: u64,
}

impl ClusterApp for SumApp {
    type Input = (u64, u64);
    type Output = u64;

    fn step(&self, &(lo, hi): &(u64, u64)) -> DcStep<(u64, u64)> {
        if hi - lo <= self.grain {
            DcStep::Leaf
        } else {
            let mid = lo + (hi - lo) / 2;
            DcStep::Divide(vec![(lo, mid), (mid, hi)])
        }
    }

    fn combine(&self, _: &(u64, u64), c: Vec<u64>) -> u64 {
        c.into_iter().sum()
    }

    fn input_bytes(&self, _: &(u64, u64)) -> u64 {
        1024
    }

    fn output_bytes(&self, _: &u64) -> u64 {
        8
    }
}

#[allow(clippy::type_complexity)]
fn leaf() -> CpuLeafRuntime<impl FnMut(usize, &(u64, u64), SimTime) -> (SimTime, u64)> {
    CpuLeafRuntime(|_n, &(lo, hi): &(u64, u64), _t| {
        (SimTime::from_micros(hi - lo), (lo..hi).sum::<u64>())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_single_crash_preserves_the_answer(
        nodes in 2usize..7,
        victim_sel in 1usize..100,
        crash_ms in 0u64..60,
        seed in 0u64..500,
    ) {
        let victim = 1 + victim_sel % (nodes - 1).max(1);
        let total = 100_000u64;
        let mut cs = ClusterSim::new(
            SumApp { grain: 2_000 },
            leaf(),
            SimConfig { nodes, seed, ..SimConfig::default() },
        );
        if victim < nodes {
            cs.schedule_crash(victim, SimTime::from_millis(crash_ms)).unwrap();
        }
        let out = cs.run_root((0, total));
        prop_assert_eq!(out, total * (total - 1) / 2);
    }

    #[test]
    fn two_crashes_preserve_the_answer(
        nodes in 4usize..8,
        crash_a_ms in 0u64..40,
        crash_b_ms in 0u64..40,
        seed in 0u64..200,
    ) {
        let total = 80_000u64;
        let mut cs = ClusterSim::new(
            SumApp { grain: 1_000 },
            leaf(),
            SimConfig { nodes, seed, ..SimConfig::default() },
        );
        cs.schedule_crash(1, SimTime::from_millis(crash_a_ms)).unwrap();
        cs.schedule_crash(2, SimTime::from_millis(crash_b_ms)).unwrap();
        let out = cs.run_root((0, total));
        prop_assert_eq!(out, total * (total - 1) / 2);
    }
}

#[test]
fn crash_storm_leaves_only_the_master() {
    // Every slave dies almost immediately; the master alone must finish.
    let total = 50_000u64;
    let mut cs = ClusterSim::new(
        SumApp { grain: 1_000 },
        leaf(),
        SimConfig {
            nodes: 6,
            seed: 11,
            ..SimConfig::default()
        },
    );
    for n in 1..6 {
        cs.schedule_crash(n, SimTime::from_millis(2 + n as u64))
            .unwrap();
    }
    let out = cs.run_root((0, total));
    assert_eq!(out, total * (total - 1) / 2);
    assert_eq!(cs.report().crashes, 5);
}

#[test]
fn crash_after_completion_is_harmless() {
    let total = 10_000u64;
    let mut cs = ClusterSim::new(
        SumApp { grain: 1_000 },
        leaf(),
        SimConfig {
            nodes: 3,
            seed: 1,
            ..SimConfig::default()
        },
    );
    // Far beyond the end of the run.
    cs.schedule_crash(1, SimTime::from_secs(3600)).unwrap();
    let out = cs.run_root((0, total));
    assert_eq!(out, total * (total - 1) / 2);
}

/// Run the sum app under `cfg` and return the answer plus the full report,
/// serialized (the serde shim emits canonical output, so string equality is
/// byte equality).
fn run_to_json(cfg: SimConfig) -> (u64, String) {
    let total = 60_000u64;
    let mut cs = ClusterSim::new(SumApp { grain: 1_000 }, leaf(), cfg);
    let out = cs.run_root((0, total));
    assert_eq!(out, total * (total - 1) / 2);
    (out, serde_json::to_string(cs.report()).unwrap())
}

#[test]
fn empty_fault_plan_is_byte_identical_to_no_plan() {
    // An explicitly-supplied empty plan must consume no randomness and arm
    // no timers: the run is indistinguishable from one that never heard of
    // fault injection.
    let base = SimConfig {
        nodes: 4,
        seed: 42,
        ..SimConfig::default()
    };
    let with_empty_plan = SimConfig {
        faults: FaultPlan::none(),
        ..base.clone()
    };
    assert_eq!(run_to_json(base), run_to_json(with_empty_plan));
}

fn lossy_plan() -> FaultPlan {
    FaultPlan {
        node_crashes: vec![NodeCrash {
            node: 2,
            at: SimTime::from_millis(5),
        }],
        link_faults: vec![LinkFault {
            src: None,
            dst: None,
            from: SimTime::from_millis(1),
            until: SimTime::from_millis(30),
            loss: 0.4,
            spike: SimTime::from_micros(500),
            spike_probability: 0.3,
        }],
        ..FaultPlan::default()
    }
}

#[test]
fn same_plan_and_seed_replays_byte_for_byte() {
    let run = || {
        run_to_json(SimConfig {
            nodes: 4,
            seed: 7,
            faults: lossy_plan(),
            ..SimConfig::default()
        })
    };
    let (out, report) = run();
    assert_eq!(
        (out, report.clone()),
        run(),
        "fault runs must replay exactly"
    );
    // ... and the plan was no placebo: this seed observes real failures.
    let parsed: cashmere_satin::RunReport = serde_json::from_str(&report).unwrap();
    assert!(parsed.saw_failures(), "{}", parsed.failure_summary());
    assert_eq!(parsed.crashes, 1);
    assert!(parsed.messages_lost > 0, "{}", parsed.failure_summary());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any plan that leaves the master and at least one worker path alive —
    /// crashes only on nodes ≥ 2, link faults bounded in time — still
    /// produces the exact divide-and-conquer result, and the run
    /// terminates (lost steal messages time out and retry; finite fault
    /// windows guarantee eventual delivery).
    #[test]
    fn any_survivable_fault_plan_preserves_the_answer(
        nodes in 3usize..6,
        crash_victim in 2usize..6,
        crash_ms in 1u64..50,
        with_crash in 0usize..2,
        loss in 0.0f64..1.0,
        from_ms in 0u64..20,
        len_ms in 1u64..40,
        spike_us in 0u64..2_000,
        spike_p in 0.0f64..1.0,
        seed in 0u64..200,
    ) {
        let mut plan = FaultPlan::default();
        if with_crash == 1 && crash_victim < nodes {
            plan.node_crashes.push(NodeCrash {
                node: crash_victim,
                at: SimTime::from_millis(crash_ms),
            });
        }
        plan.link_faults.push(LinkFault {
            src: None,
            dst: None,
            from: SimTime::from_millis(from_ms),
            until: SimTime::from_millis(from_ms + len_ms),
            loss,
            spike: SimTime::from_micros(spike_us),
            spike_probability: spike_p,
        });
        let total = 60_000u64;
        let mut cs = ClusterSim::new(
            SumApp { grain: 1_000 },
            leaf(),
            SimConfig { nodes, seed, faults: plan, ..SimConfig::default() },
        );
        let out = cs.run_root((0, total));
        prop_assert_eq!(out, total * (total - 1) / 2);
    }

    /// Random survivable crash/join interleavings: each worker node gets an
    /// independent lifecycle (up; crash; crash then rejoin; crash, rejoin,
    /// crash again; or start offline and join late). Whatever the
    /// interleaving, the answer is exact — each leaf range contributes to
    /// the sum exactly once (any double-count or drop changes the total,
    /// because every range sums to a distinct value).
    #[test]
    fn any_crash_join_interleaving_counts_each_leaf_once(
        nodes in 3usize..6,
        lifecycles in prop::collection::vec(0usize..5, 5..6),
        t_base in prop::collection::vec(1u64..25, 5..6),
        seed in 0u64..200,
    ) {
        let mut plan = FaultPlan::default();
        for n in 1..nodes {
            let t0 = SimTime::from_millis(t_base[n - 1]);
            let t1 = t0 + SimTime::from_millis(4);
            let t2 = t1 + SimTime::from_millis(4);
            match lifecycles[n - 1] {
                // 0: stays up the whole run.
                1 => plan.node_crashes.push(NodeCrash { node: n, at: t0 }),
                2 => {
                    plan.node_crashes.push(NodeCrash { node: n, at: t0 });
                    plan.node_joins.push(NodeJoin { node: n, at: t1 });
                }
                3 => {
                    plan.node_crashes.push(NodeCrash { node: n, at: t0 });
                    plan.node_joins.push(NodeJoin { node: n, at: t1 });
                    plan.node_crashes.push(NodeCrash { node: n, at: t2 });
                }
                4 => plan.node_joins.push(NodeJoin { node: n, at: t0 }),
                _ => {}
            }
        }
        prop_assert!(plan.validate(nodes).is_ok());
        let total = 60_000u64;
        let mut cs = ClusterSim::new(
            SumApp { grain: 1_000 },
            leaf(),
            SimConfig { nodes, seed, faults: plan, ..SimConfig::default() },
        );
        let out = cs.run_root((0, total));
        prop_assert_eq!(out, total * (total - 1) / 2);
    }
}

/// A fixed chaos-style plan — two crashes, one rejoin, a lossy window —
/// replays byte-for-byte, and this seed actually exercises the orphan
/// table (harvested and reused results both non-zero).
#[test]
fn fixed_chaos_seed_replays_byte_for_byte() {
    let plan = FaultPlan {
        node_crashes: vec![
            NodeCrash {
                node: 2,
                at: SimTime::from_millis(3),
            },
            NodeCrash {
                node: 3,
                at: SimTime::from_millis(5),
            },
        ],
        node_joins: vec![NodeJoin {
            node: 2,
            at: SimTime::from_millis(8),
        }],
        link_faults: vec![LinkFault {
            src: None,
            dst: None,
            from: SimTime::from_millis(1),
            until: SimTime::from_millis(12),
            loss: 0.15,
            spike: SimTime::from_micros(300),
            spike_probability: 0.2,
        }],
        ..FaultPlan::default()
    };
    // A longer run than `run_to_json`'s so the crashes land mid-tree and
    // actually orphan completed subtree results.
    let run = || {
        let total = 200_000u64;
        let mut cs = ClusterSim::new(
            SumApp { grain: 1_000 },
            leaf(),
            SimConfig {
                nodes: 4,
                seed: 2,
                faults: plan.clone(),
                ..SimConfig::default()
            },
        );
        let out = cs.run_root((0, total));
        assert_eq!(out, total * (total - 1) / 2);
        (out, serde_json::to_string(cs.report()).unwrap())
    };
    let (out, report) = run();
    assert_eq!(
        (out, report.clone()),
        run(),
        "chaos runs must replay exactly"
    );
    let parsed: cashmere_satin::RunReport = serde_json::from_str(&report).unwrap();
    assert_eq!(parsed.crashes, 2, "{}", parsed.failure_summary());
    assert_eq!(parsed.joins, 1, "{}", parsed.failure_summary());
    assert!(
        parsed.orphans_harvested > 0 && parsed.orphans_reused > 0,
        "this seed must exercise the orphan table: {}",
        parsed.failure_summary()
    );
}
