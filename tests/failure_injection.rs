//! Randomized failure injection: whatever node crashes at whatever time,
//! Satin's recovery must still deliver the exact answer (paper Sec. II-A:
//! "Satin recovers from nodes that are no longer responding").

use cashmere_des::SimTime;
use cashmere_satin::{ClusterApp, ClusterSim, CpuLeafRuntime, DcStep, SimConfig};
use proptest::prelude::*;

struct SumApp {
    grain: u64,
}

impl ClusterApp for SumApp {
    type Input = (u64, u64);
    type Output = u64;

    fn step(&self, &(lo, hi): &(u64, u64)) -> DcStep<(u64, u64)> {
        if hi - lo <= self.grain {
            DcStep::Leaf
        } else {
            let mid = lo + (hi - lo) / 2;
            DcStep::Divide(vec![(lo, mid), (mid, hi)])
        }
    }

    fn combine(&self, _: &(u64, u64), c: Vec<u64>) -> u64 {
        c.into_iter().sum()
    }

    fn input_bytes(&self, _: &(u64, u64)) -> u64 {
        1024
    }

    fn output_bytes(&self, _: &u64) -> u64 {
        8
    }
}

#[allow(clippy::type_complexity)]
fn leaf() -> CpuLeafRuntime<impl FnMut(usize, &(u64, u64), SimTime) -> (SimTime, u64)> {
    CpuLeafRuntime(|_n, &(lo, hi): &(u64, u64), _t| {
        (SimTime::from_micros(hi - lo), (lo..hi).sum::<u64>())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_single_crash_preserves_the_answer(
        nodes in 2usize..7,
        victim_sel in 1usize..100,
        crash_ms in 0u64..60,
        seed in 0u64..500,
    ) {
        let victim = 1 + victim_sel % (nodes - 1).max(1);
        let total = 100_000u64;
        let mut cs = ClusterSim::new(
            SumApp { grain: 2_000 },
            leaf(),
            SimConfig { nodes, seed, ..SimConfig::default() },
        );
        if victim < nodes {
            cs.schedule_crash(victim, SimTime::from_millis(crash_ms));
        }
        let out = cs.run_root((0, total));
        prop_assert_eq!(out, total * (total - 1) / 2);
    }

    #[test]
    fn two_crashes_preserve_the_answer(
        nodes in 4usize..8,
        crash_a_ms in 0u64..40,
        crash_b_ms in 0u64..40,
        seed in 0u64..200,
    ) {
        let total = 80_000u64;
        let mut cs = ClusterSim::new(
            SumApp { grain: 1_000 },
            leaf(),
            SimConfig { nodes, seed, ..SimConfig::default() },
        );
        cs.schedule_crash(1, SimTime::from_millis(crash_a_ms));
        cs.schedule_crash(2, SimTime::from_millis(crash_b_ms));
        let out = cs.run_root((0, total));
        prop_assert_eq!(out, total * (total - 1) / 2);
    }
}

#[test]
fn crash_storm_leaves_only_the_master() {
    // Every slave dies almost immediately; the master alone must finish.
    let total = 50_000u64;
    let mut cs = ClusterSim::new(
        SumApp { grain: 1_000 },
        leaf(),
        SimConfig {
            nodes: 6,
            seed: 11,
            ..SimConfig::default()
        },
    );
    for n in 1..6 {
        cs.schedule_crash(n, SimTime::from_millis(2 + n as u64));
    }
    let out = cs.run_root((0, total));
    assert_eq!(out, total * (total - 1) / 2);
    assert_eq!(cs.report().crashes, 5);
}

#[test]
fn crash_after_completion_is_harmless() {
    let total = 10_000u64;
    let mut cs = ClusterSim::new(
        SumApp { grain: 1_000 },
        leaf(),
        SimConfig {
            nodes: 3,
            seed: 1,
            ..SimConfig::default()
        },
    );
    // Far beyond the end of the run.
    cs.schedule_crash(1, SimTime::from_secs(3600));
    let out = cs.run_root((0, total));
    assert_eq!(out, total * (total - 1) / 2);
}
