//! Property-based tests of the MCPL toolchain: randomly generated
//! expression kernels must (a) pretty-print → parse → check cleanly and
//! (b) compute exactly what a direct Rust evaluation of the same expression
//! computes, lane for lane.

use cashmere_hwdesc::standard_hierarchy;
use cashmere_mcl::interp::{execute, ExecOptions};
use cashmere_mcl::value::{ArgValue, ArrayArg};
use cashmere_mcl::{compile, ElemTy};
use proptest::prelude::*;

/// A small expression language over one float variable `x` and one int
/// variable `i`, rendered to MCPL source and evaluated natively.
#[derive(Debug, Clone)]
enum E {
    X,
    I,
    Lit(i8),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Min(Box<E>, Box<E>),
    Max(Box<E>, Box<E>),
    Neg(Box<E>),
    Sqrt(Box<E>),
    Fabs(Box<E>),
}

impl E {
    fn to_mcpl(&self) -> String {
        match self {
            E::X => "x".into(),
            E::I => "(float) i".into(),
            E::Lit(v) => format!("{}.0", v),
            E::Add(a, b) => format!("({} + {})", a.to_mcpl(), b.to_mcpl()),
            E::Sub(a, b) => format!("({} - {})", a.to_mcpl(), b.to_mcpl()),
            E::Mul(a, b) => format!("({} * {})", a.to_mcpl(), b.to_mcpl()),
            E::Min(a, b) => format!("min({}, {})", a.to_mcpl(), b.to_mcpl()),
            E::Max(a, b) => format!("max({}, {})", a.to_mcpl(), b.to_mcpl()),
            E::Neg(a) => format!("(0.0 - {})", a.to_mcpl()),
            E::Sqrt(a) => format!("sqrt({})", a.to_mcpl()),
            E::Fabs(a) => format!("fabs({})", a.to_mcpl()),
        }
    }

    fn eval(&self, x: f64, i: i64) -> f64 {
        match self {
            E::X => x,
            E::I => i as f64,
            E::Lit(v) => f64::from(*v),
            E::Add(a, b) => a.eval(x, i) + b.eval(x, i),
            E::Sub(a, b) => a.eval(x, i) - b.eval(x, i),
            E::Mul(a, b) => a.eval(x, i) * b.eval(x, i),
            E::Min(a, b) => a.eval(x, i).min(b.eval(x, i)),
            E::Max(a, b) => a.eval(x, i).max(b.eval(x, i)),
            E::Neg(a) => -a.eval(x, i),
            // The interpreter clamps sqrt/log args to stay finite.
            E::Sqrt(a) => a.eval(x, i).max(0.0).sqrt(),
            E::Fabs(a) => a.eval(x, i).abs(),
        }
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![Just(E::X), Just(E::I), (-9i8..10).prop_map(E::Lit),];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Min(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Max(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| E::Neg(Box::new(a))),
            inner.clone().prop_map(|a| E::Sqrt(Box::new(a))),
            inner.prop_map(|a| E::Fabs(Box::new(a))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_kernels_compute_like_rust(expr in arb_expr(), n in 1u64..120) {
        let src = format!(
            "perfect void gen(int n, float[n] out, float[n] xs) {{
  foreach (int i in n threads) {{
    float x = xs[i];
    out[i] = {};
  }}
}}",
            expr.to_mcpl()
        );
        let h = standard_hierarchy();
        let ck = compile(&src, &h).expect("generated kernel compiles");
        let xs: Vec<f64> = (0..n).map(|k| f64::from(k as f32 * 0.5 - 8.0)).collect();
        let r = execute(
            &ck,
            vec![
                ArgValue::Int(n as i64),
                ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[n])),
                ArgValue::Array(ArrayArg::float(&[n], xs.clone())),
            ],
            &["threads".to_string()],
            &ExecOptions::default(),
        )
        .expect("generated kernel runs");
        let out = r.args[1].clone().array();
        for (k, x) in xs.iter().enumerate() {
            let want = expr.eval(*x, k as i64);
            let got = out.as_f64()[k];
            if want.is_finite() && want.abs() < 1e30 {
                let want32 = f64::from(want as f32);
                prop_assert!(
                    (got - want32).abs() <= 1e-3 * (1.0 + want32.abs()),
                    "lane {k}: {got} vs {want32} for `{}`",
                    expr.to_mcpl()
                );
            }
        }
    }

    #[test]
    fn generated_kernels_are_deterministic(expr in arb_expr()) {
        let src = format!(
            "perfect void gen(int n, float[n] out, float[n] xs) {{
  foreach (int i in n threads) {{
    float x = xs[i];
    out[i] = {};
  }}
}}",
            expr.to_mcpl()
        );
        let h = standard_hierarchy();
        let ck = compile(&src, &h).expect("compiles");
        let run = || {
            let xs: Vec<f64> = (0..64).map(|k| f64::from(k as f32) / 7.0).collect();
            let r = execute(
                &ck,
                vec![
                    ArgValue::Int(64),
                    ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[64])),
                    ArgValue::Array(ArrayArg::float(&[64], xs)),
                ],
                &["threads".to_string()],
                &ExecOptions::default(),
            )
            .expect("runs");
            (
                r.args[1].clone().array().as_f64().to_vec(),
                r.stats.issue_cycles.to_bits(),
                r.stats.flops.to_bits(),
            )
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn pretty_printer_roundtrips_generated_kernels(expr in arb_expr()) {
        let src = format!(
            "perfect void gen(int n, float[n] out, float[n] xs) {{
  foreach (int i in n threads) {{
    float x = xs[i];
    out[i] = {};
  }}
}}",
            expr.to_mcpl()
        );
        let k1 = cashmere_mcl::parse(&src).expect("parses");
        let printed = cashmere_mcl::kernel_to_string(&k1);
        let k2 = cashmere_mcl::parse(&printed).expect("printed source reparses");
        // Printing is a fixed point: canonical form after one round.
        prop_assert_eq!(printed.clone(), cashmere_mcl::kernel_to_string(&k2));
        // And both versions compute the same thing.
        let h = standard_hierarchy();
        let run = |k: &cashmere_mcl::Kernel| {
            let ck = cashmere_mcl::check(k, &h).expect("checks");
            let xs: Vec<f64> = (0..32).map(|v| f64::from(v as f32) * 0.5 - 8.0).collect();
            let r = execute(
                &ck,
                vec![
                    ArgValue::Int(32),
                    ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[32])),
                    ArgValue::Array(ArrayArg::float(&[32], xs)),
                ],
                &["threads".to_string()],
                &ExecOptions::default(),
            )
            .expect("runs");
            r.args[1].clone().array().as_f64().to_vec()
        };
        prop_assert_eq!(run(&k1), run(&k2));
    }

    #[test]
    fn lexer_never_panics_on_arbitrary_input(src in "\\PC*") {
        // Arbitrary garbage must produce an error, never a panic.
        let _ = cashmere_mcl::parse(&src);
    }

    /// Differential test of the register-bytecode VM against the tree
    /// walker: random expressions, lane counts, group sizes and argument
    /// values, through divergent branches and lane-varying loop trip
    /// counts, in both full and sampled modes. Statistics must be
    /// bit-identical (f64 `to_bits` via the Debug rendering) and every
    /// output buffer byte-identical.
    #[test]
    fn vm_matches_tree_walker(
        expr in arb_expr(),
        n in 1u64..300,
        group in prop::sample::select(vec![16usize, 64, 256]),
        simd in prop::sample::select(vec![8usize, 16, 32]),
        seed in 0i64..1000,
        sampled in prop::sample::select(vec![false, true]),
    ) {
        let src = format!(
            "perfect void gen(int n, int seed, float[n] out, float[n] xs) {{
  foreach (int i in n threads) {{
    float x = xs[i];
    float acc = 0.0;
    for (int k = 0; k < i % 5 + 1; k = k + 1) {{
      acc = acc + x * (float) k;
    }}
    if ((i + seed) % 3 == 0) {{
      out[i] = {};
    }} else {{
      out[i] = acc - x;
    }}
  }}
}}",
            expr.to_mcpl()
        );
        let h = standard_hierarchy();
        let ck = compile(&src, &h).expect("generated kernel compiles");
        let opts = ExecOptions {
            simd_width: simd,
            group_size: group,
            sample: sampled.then(Default::default),
        };
        let mk_args = || {
            let xs: Vec<f64> = (0..n)
                .map(|k| f64::from((k as i64 * 37 + seed) as f32 * 0.25 - 9.0))
                .collect();
            vec![
                ArgValue::Int(n as i64),
                ArgValue::Int(seed),
                ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[n])),
                ArgValue::Array(ArrayArg::float(&[n], xs)),
            ]
        };
        let units = ["threads".to_string()];
        let tree = execute(&ck, mk_args(), &units, &opts).expect("tree runs");
        let vm = cashmere_mcl::vm::execute(&ck, mk_args(), &units, &opts).expect("vm runs");
        prop_assert_eq!(format!("{:?}", tree.stats), format!("{:?}", vm.stats));
        prop_assert_eq!(
            tree.stats.issue_cycles.to_bits(),
            vm.stats.issue_cycles.to_bits()
        );
        prop_assert_eq!(tree.stats.flops.to_bits(), vm.stats.flops.to_bits());
        prop_assert_eq!(
            tree.stats.global_bytes.to_bits(),
            vm.stats.global_bytes.to_bits()
        );
        for (t, v) in tree.args.iter().zip(&vm.args) {
            prop_assert_eq!(format!("{t:?}"), format!("{v:?}"));
        }
    }

    #[test]
    fn hdl_parser_never_panics_on_arbitrary_input(src in "\\PC*") {
        let _ = cashmere_hwdesc::hdl::parse(&src);
    }

    #[test]
    fn checker_rejects_or_accepts_without_panic(
        level in prop::sample::select(vec!["perfect", "gpu", "mic", "host_cpu", "bogus"]),
        unit in prop::sample::select(vec!["threads", "blocks", "cores", "warps"]),
    ) {
        let src = format!(
            "{level} void t(int n, float[n] a) {{
  foreach (int i in n {unit}) {{ a[i] = 0.0; }}
}}"
        );
        let h = standard_hierarchy();
        let _ = compile(&src, &h); // must not panic either way
    }
}

/// Regression pin: exact counter values for a fixed divergent kernel, on
/// both engines. If either interpreter's accounting drifts — even by one
/// ULP — this fails, independently of the differential property above.
#[test]
fn engines_pin_exact_counters() {
    let src = "perfect void pin(int n, float[n] out, float[n] xs) {
  foreach (int i in n threads) {
    float x = xs[i];
    float acc = 0.0;
    for (int k = 0; k < i % 3 + 1; k = k + 1) { acc = acc + x; }
    if (i % 2 == 0) { out[i] = acc * 2.0; } else { out[i] = acc; }
  }
}";
    let h = standard_hierarchy();
    let ck = compile(src, &h).expect("pin kernel compiles");
    let units = ["threads".to_string()];
    let mk_args = || {
        let xs: Vec<f64> = (0..96).map(|k| f64::from(k as f32) * 0.125).collect();
        vec![
            ArgValue::Int(96),
            ArgValue::Array(ArrayArg::zeros(ElemTy::Float, &[96])),
            ArgValue::Array(ArrayArg::float(&[96], xs)),
        ]
    };
    let opts = ExecOptions::default();
    let tree = execute(&ck, mk_args(), &units, &opts).expect("tree runs");
    let vm = cashmere_mcl::vm::execute(&ck, mk_args(), &units, &opts).expect("vm runs");
    for (name, r) in [("tree", &tree), ("vm", &vm)] {
        let s = &r.stats;
        assert_eq!(s.total_threads, 96.0, "{name} total_threads");
        assert_eq!(s.raw_lanes, 96.0, "{name} raw_lanes");
        assert_eq!(s.groups, 1.0, "{name} groups");
        assert_eq!(s.flops, 240.0, "{name} flops");
        assert_eq!(s.branch_events, 15.0, "{name} branch_events");
        assert_eq!(s.divergent_branches, 9.0, "{name} divergent_branches");
    }
    assert_eq!(
        format!("{:?}", tree.stats),
        format!("{:?}", vm.stats),
        "full stats must be bit-identical between engines"
    );
}
