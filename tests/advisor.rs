//! Acceptance tests for the what-if performance advisor: reports must be
//! byte-identical at any worker count, virtually speeding up the dominant
//! device must never slow the simulated run, the OpenMetrics export must
//! parse line-by-line, and Chrome traces must carry utilization counter
//! tracks for exactly the lanes that did work.

use cashmere::{build_cluster, ClusterSpec, RuntimeConfig};
use cashmere_apps::kmeans::{self, KmeansApp, KmeansProblem};
use cashmere_apps::KernelSet;
use cashmere_bench::{advise, ObsCapture, PerturbSet};
use cashmere_des::{ChromeTrace, SimTime};
use cashmere_satin::SimConfig;

/// A small deterministic K-means workload (2 M points, 1 iteration) in the
/// shape the advisor driver expects: re-execute with an optional
/// perturbation applied, return the makespan and (when observing) the
/// capture.
fn small_runner(
    spec: &ClusterSpec,
    seed: u64,
) -> impl Fn(Option<&PerturbSet>, bool) -> (f64, Option<ObsCapture>) + Sync + '_ {
    move |perturb, observe| {
        let pr = KmeansProblem {
            n: 2_000_000,
            k: 512,
            d: 4,
            iterations: 1,
        };
        let app = KmeansApp::phantom(pr, 250_000, 8);
        let cents = app.centroids.clone();
        let mut cfg = SimConfig {
            cores_per_node: 8,
            max_concurrent_leaves: 2,
            steal_retry: SimTime::from_micros(50),
            seed,
            trace: observe,
            ..SimConfig::default()
        };
        if let Some(p) = perturb {
            p.apply_sim_config(&mut cfg);
        }
        let mut cluster = build_cluster(
            app,
            KmeansApp::registry(KernelSet::Optimized),
            spec,
            cfg,
            RuntimeConfig::default(),
        )
        .unwrap();
        if let Some(p) = perturb {
            p.apply_runtime(cluster.leaf_runtime_mut());
        }
        let (_, elapsed) = kmeans::run_iterations(&mut cluster, &pr, &cents, false);
        let cap = observe.then(|| ObsCapture {
            trace: cluster.trace().clone(),
            metrics: cluster.metrics().clone(),
            audit: cluster.leaf_runtime().audit.clone(),
            report: cluster.report().clone(),
            probes: cluster.probe_series().cloned(),
            horizon: cluster.trace().horizon().max(cluster.report().total_time),
        });
        (elapsed.as_secs_f64(), cap)
    }
}

#[test]
fn advisor_reports_are_byte_identical_across_jobs() {
    let spec = ClusterSpec::homogeneous(2, "gtx480");
    let run_at = |jobs: usize| {
        let run = advise(
            "kmeans 2n",
            42,
            &spec,
            &[],
            &[0.5, 2.0],
            jobs,
            small_runner(&spec, 42),
        )
        .unwrap();
        (serde_json::to_string_pretty(&run.json).unwrap(), run.text)
    };
    let (json1, text1) = run_at(1);
    let (json4, text4) = run_at(4);
    assert_eq!(json1, json4, "JSON report must not depend on --jobs");
    assert_eq!(text1, text4, "text report must not depend on --jobs");
    assert!(text1.contains("what-if ranking"), "{text1}");
    assert!(text1.contains("resource utilization"), "{text1}");
}

#[test]
fn speeding_the_dominant_device_never_slows_the_run() {
    let spec = ClusterSpec::homogeneous(4, "gtx480");
    let what_if = vec![PerturbSet::parse_list("dev:gtx480:2x").unwrap()];
    let run = advise(
        "kmeans 4n",
        42,
        &spec,
        &what_if,
        &[2.0],
        2,
        small_runner(&spec, 42),
    )
    .unwrap();
    assert_eq!(run.json.report.rows.len(), 1);
    let row = &run.json.report.rows[0];
    assert_eq!(row.spec, "dev:gtx480:2x");
    assert!(
        row.delta_ns <= 0,
        "2x on the only device kind must not increase the makespan, delta {} ns",
        row.delta_ns
    );
    // This workload is kernel-dominated: the win must be substantial, not
    // merely non-negative.
    assert!(
        row.speedup > 1.3,
        "expected a real win on a kernel-dominated run, got {:.3}x",
        row.speedup
    );
    // The counterfactual replay covered the audited placements.
    assert!(!run.json.counterfactuals.is_empty());
    assert!(run.json.counterfactuals[0].replayed > 0);
}

#[test]
fn openmetrics_export_parses_line_by_line() {
    let spec = ClusterSpec::homogeneous(2, "gtx480");
    let (_, cap) = small_runner(&spec, 42)(None, true);
    let cap = cap.unwrap();
    let text = cap.metrics.to_openmetrics(cap.horizon);
    assert!(text.ends_with("# EOF\n"), "must end with the EOF marker");
    let mut families = 0;
    let mut samples = 0;
    for line in text.lines() {
        if line == "# EOF" {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().unwrap();
            let kind = parts.next().unwrap();
            assert!(name.starts_with("cashmere_"), "family `{name}`");
            assert!(
                ["counter", "gauge", "summary"].contains(&kind),
                "type `{kind}`"
            );
            families += 1;
            continue;
        }
        if line.starts_with("# HELP ") {
            continue;
        }
        // Sample line: `name{labels} value` or `name value`, value parses
        // as a finite float.
        let (metric, value) = line.rsplit_once(' ').expect(line);
        let v: f64 = value.parse().unwrap_or_else(|_| panic!("value in {line}"));
        assert!(v.is_finite(), "{line}");
        let name = metric.split('{').next().unwrap();
        assert!(
            name.starts_with("cashmere_")
                && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "metric name `{name}`"
        );
        samples += 1;
    }
    assert!(families > 0, "no metric families:\n{text}");
    assert!(samples >= families, "every family needs samples:\n{text}");
}

#[test]
fn chrome_export_carries_utilization_counter_tracks() {
    let spec = ClusterSpec::homogeneous(2, "gtx480");
    let (_, cap) = small_runner(&spec, 42)(None, true);
    let cap = cap.unwrap();
    let json = cap.trace.to_chrome_json();
    let ct: ChromeTrace = serde_json::from_str(&json).expect("valid Chrome trace JSON");
    let tracks = ct.counter_tracks();
    assert!(!tracks.is_empty(), "expected utilization counter tracks");
    assert!(tracks.iter().all(|t| t.starts_with("util:")), "{tracks:?}");
    // Only lanes that recorded spans get a counter track, and each track
    // ends back at zero occupancy.
    assert!(tracks.len() <= ct.lane_count());
    for t in &tracks {
        let samples = ct.counter_samples(t);
        assert!(!samples.is_empty());
        assert_eq!(samples.last().unwrap().1, 0, "track {t} must end idle");
    }
    // The device exec lanes did work, so their tracks must exist.
    assert!(
        tracks.iter().any(|t| t.contains(".exec")),
        "no exec counter track in {tracks:?}"
    );
}
