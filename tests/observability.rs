//! Acceptance tests for the observability subsystem: a seeded
//! heterogeneous K-means run must export a valid Chrome trace with device
//! lanes and steal flow arrows, a balancer audit log that matches actual
//! placement, a critical path that tiles the makespan, and byte-identical
//! exports across identical-seed reruns.

use cashmere::{build_cluster, AuditEntry, ClusterSpec, RuntimeConfig};
use cashmere_apps::kmeans::{self, KmeansApp, KmeansProblem};
use cashmere_apps::KernelSet;
use cashmere_des::obs::CriticalPath;
use cashmere_des::trace::{SpanKind, Trace};
use cashmere_des::{ChromeTrace, SimTime};
use cashmere_satin::SimConfig;
use std::sync::OnceLock;

struct Observed {
    trace: Trace,
    chrome: String,
    audit_json: String,
    audit: Vec<AuditEntry>,
    /// `jobs_run[node][device]` as counted by the device slots.
    jobs_run: Vec<Vec<u64>>,
    horizon: SimTime,
}

/// One traced heterogeneous K-means run (the gantt bin's `--small` shape).
fn observed_run(seed: u64) -> Observed {
    let spec = ClusterSpec {
        node_devices: vec![
            vec!["gtx480".to_string()],
            vec!["k20".to_string(), "xeon_phi".to_string()],
            vec!["gtx480".to_string()],
            vec!["gtx480".to_string()],
        ],
    };
    let pr = KmeansProblem {
        n: 4_000_000,
        k: 1024,
        d: 4,
        iterations: 2,
    };
    let app = KmeansApp::phantom(pr, 250_000, 8);
    let cents = app.centroids.clone();
    let cfg = SimConfig {
        cores_per_node: 8,
        max_concurrent_leaves: 2,
        steal_retry: SimTime::from_micros(50),
        seed,
        trace: true,
        ..SimConfig::default()
    };
    let mut cluster = build_cluster(
        app,
        KmeansApp::registry(KernelSet::Optimized),
        &spec,
        cfg,
        RuntimeConfig::default(),
    )
    .unwrap();
    let _ = kmeans::run_iterations(&mut cluster, &pr, &cents, false);
    let rt = cluster.leaf_runtime();
    Observed {
        trace: cluster.trace().clone(),
        chrome: cluster.trace().to_chrome_json(),
        audit_json: serde_json::to_string_pretty(&rt.audit).unwrap(),
        audit: rt.audit.clone(),
        jobs_run: rt
            .nodes
            .iter()
            .map(|n| n.devices.iter().map(|d| d.jobs_run).collect())
            .collect(),
        horizon: cluster.trace().horizon(),
    }
}

fn shared() -> &'static Observed {
    static RUN: OnceLock<Observed> = OnceLock::new();
    RUN.get_or_init(|| observed_run(42))
}

#[test]
fn chrome_export_is_valid_and_has_lanes_and_steal_flows() {
    let o = shared();
    let ct: ChromeTrace = serde_json::from_str(&o.chrome).expect("valid Chrome trace JSON");
    assert_eq!(ct.displayTimeUnit, "ns");
    assert!(
        ct.lane_count() >= 4,
        "expected ≥4 track lanes, got {}",
        ct.lane_count()
    );
    assert!(
        ct.flow_count("steal") >= 1,
        "expected at least one steal flow arrow"
    );
    assert!(!ct.traceEvents.is_empty());
}

#[test]
fn span_tree_is_well_formed_with_full_device_lineage() {
    let o = shared();
    o.trace.check_tree().expect("span tree well-formed");
    let spans = o.trace.spans();
    // At least one kernel span must trace back through its h2d copy to the
    // node-level leaf that submitted it: kernel ← copy ← cpu leaf.
    let lineage_ok = spans.iter().any(|s| {
        if s.kind != SpanKind::Kernel {
            return false;
        }
        let Some(h2d) = s.parent.and_then(|p| o.trace.span(p)) else {
            return false;
        };
        if h2d.kind != SpanKind::CopyToDevice {
            return false;
        }
        matches!(
            h2d.parent.and_then(|p| o.trace.span(p)),
            Some(leaf) if leaf.kind == SpanKind::CpuTask
        )
    });
    assert!(lineage_ok, "no kernel span with full h2d→leaf lineage");
    assert!(spans.iter().any(|s| s.kind == SpanKind::Steal));
    assert!(spans.iter().any(|s| s.kind == SpanKind::CopyFromDevice));
}

#[test]
fn audit_log_matches_actual_placement() {
    let o = shared();
    assert!(!o.audit.is_empty(), "tracing run must record decisions");
    let mut placed = vec![vec![0u64; 2]; o.jobs_run.len()];
    for e in &o.audit {
        match e.chosen {
            Some(d) => {
                assert_eq!(e.reason, "placed", "chosen device implies placement");
                placed[e.node][d] += 1;
            }
            None => assert_ne!(e.reason, "placed"),
        }
        // The audited candidate table must contain the chosen device as an
        // allowed, live candidate with a scenario estimate.
        if let Some(d) = e.chosen {
            let c = &e.candidates[d];
            assert!(c.allowed && !c.dead && c.scenario_s.is_some());
        }
    }
    for (n, devs) in o.jobs_run.iter().enumerate() {
        for (d, &runs) in devs.iter().enumerate() {
            assert_eq!(
                placed[n][d], runs,
                "audit placements for n{n}.dev{d} disagree with jobs_run"
            );
        }
    }
}

#[test]
fn critical_path_tiles_the_makespan() {
    let o = shared();
    let cp = CriticalPath::compute(&o.trace);
    let by_kind_sum: u64 = cp.by_kind.values().map(|t| t.as_nanos()).sum();
    assert_eq!(by_kind_sum, cp.total.as_nanos(), "attribution must tile");
    let horizon = o.horizon.as_nanos() as f64;
    let covered = cp.total.as_nanos() as f64;
    assert!(
        (covered - horizon).abs() <= horizon * 0.01,
        "critical path {covered} vs horizon {horizon} off by more than 1%"
    );
}

#[test]
fn identical_seeds_emit_byte_identical_exports() {
    let a = observed_run(7);
    let b = observed_run(7);
    assert_eq!(a.chrome, b.chrome, "Chrome trace must be deterministic");
    assert_eq!(
        a.audit_json, b.audit_json,
        "audit log must be deterministic"
    );
}
