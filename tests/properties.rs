//! Property-based tests over the core data structures and invariants,
//! spanning the whole stack: virtual time, the event engine, the
//! interconnect, the MCPL interpreter, the load balancer and the D&C
//! engine.

use cashmere::Balancer;
use cashmere_des::{Sim, SimTime};
use cashmere_hwdesc::standard_hierarchy;
use cashmere_mcl::interp::{execute, ExecOptions, Sampling};
use cashmere_mcl::value::{ArgValue, ArrayArg};
use cashmere_mcl::{compile, ElemTy};
use cashmere_netsim::nic::{schedule_transfer, NodeNic};
use cashmere_netsim::NetConfig;
use cashmere_satin::{ClusterApp, ClusterSim, CpuLeafRuntime, DcStep, SimConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simtime_add_sub_roundtrip(a in 0u64..u64::MAX / 4, b in 0u64..u64::MAX / 4) {
        let (ta, tb) = (SimTime::from_nanos(a), SimTime::from_nanos(b));
        prop_assert_eq!(ta + tb - tb, ta);
        prop_assert_eq!((ta + tb).saturating_sub(ta + tb), SimTime::ZERO);
        prop_assert!(ta.max(tb) >= ta.min(tb));
    }

    #[test]
    fn simtime_secs_f64_roundtrip(ns in 0u64..u64::MAX / 1024) {
        let t = SimTime::from_nanos(ns);
        let back = SimTime::from_secs_f64(t.as_secs_f64());
        // f64 has 52 bits of mantissa; allow relative error.
        let err = back.as_nanos().abs_diff(ns);
        prop_assert!(err as f64 <= 1.0 + ns as f64 * 1e-12, "{} vs {}", back.as_nanos(), ns);
    }

    #[test]
    fn des_fires_in_nondecreasing_time_order(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut sim: Sim<Vec<u64>> = Sim::new(1);
        let mut world: Vec<u64> = Vec::new();
        for t in &times {
            let t = *t;
            sim.schedule_at(SimTime::from_nanos(t), move |w: &mut Vec<u64>, _: &mut Sim<Vec<u64>>| {
                w.push(t);
            });
        }
        sim.run(&mut world);
        prop_assert_eq!(world.len(), times.len());
        prop_assert!(world.windows(2).all(|w| w[0] <= w[1]), "events out of order");
    }

    #[test]
    fn nic_transfers_never_overlap_in_tx(sizes in prop::collection::vec(1u64..10_000_000, 1..20)) {
        let net = NetConfig::qdr_infiniband();
        let mut a = NodeNic::default();
        let mut b = NodeNic::default();
        let mut spans: Vec<(SimTime, SimTime)> = Vec::new();
        let mut now = SimTime::ZERO;
        for s in sizes {
            let tr = schedule_transfer(&net, now, &mut a, &mut b, s, 0.0, 0.0);
            let ser = SimTime::from_secs_f64(s as f64 / (net.bandwidth_gbs * 1e9));
            spans.push((tr.start, tr.start + ser));
            now += SimTime::from_nanos(137); // requests arrive faster than the wire drains
        }
        for w in spans.windows(2) {
            prop_assert!(w[1].0 >= w[0].1, "TX serialization violated: {w:?}");
        }
    }

    #[test]
    fn interpreter_saxpy_matches_reference(
        n in 1u64..300,
        alpha_x10 in -50i64..50,
        group in prop::sample::select(vec![16usize, 64, 256]),
    ) {
        let alpha = alpha_x10 as f64 / 10.0;
        let h = standard_hierarchy();
        let ck = compile(
            "perfect void saxpy(int n, float alpha, float[n] y, float[n] x) {
  foreach (int i in n threads) { y[i] += alpha * x[i]; }
}",
            &h,
        ).unwrap();
        let xs: Vec<f64> = (0..n).map(|i| f64::from((i as f32) * 0.25 - 8.0)).collect();
        let ys: Vec<f64> = (0..n).map(|i| f64::from(i as f32 * 0.5)).collect();
        let r = execute(
            &ck,
            vec![
                ArgValue::Int(n as i64),
                ArgValue::Float(alpha),
                ArgValue::Array(ArrayArg::float(&[n], ys.clone())),
                ArgValue::Array(ArrayArg::float(&[n], xs.clone())),
            ],
            &["threads".to_string()],
            &ExecOptions { group_size: group, simd_width: 32, sample: None },
        ).unwrap();
        let got = r.args[2].clone().array();
        for i in 0..n as usize {
            let want = f64::from((ys[i] + alpha * xs[i]) as f32);
            prop_assert!((got.as_f64()[i] - want).abs() < 1e-9, "i={i}");
        }
        // flops: one fused multiply-add per element.
        prop_assert!((r.stats.flops - 2.0 * n as f64).abs() < 1e-9);
    }

    #[test]
    fn sampled_stats_scale_invariance(
        n_log2 in 10u32..18,
        chunks in 1usize..4,
    ) {
        // Sampled runs must report the same totals as full runs for a
        // uniform kernel, whatever the sampling budget.
        let n = 1u64 << n_log2;
        let h = standard_hierarchy();
        let ck = compile(
            "perfect void touch(int n, float[n] a) {
  foreach (int i in n threads) { a[i] = a[i] * 2.0 + 1.0; }
}",
            &h,
        ).unwrap();
        let run = |sample: Option<Sampling>| {
            let r = execute(
                &ck,
                vec![
                    ArgValue::Int(n as i64),
                    ArgValue::Array(ArrayArg::phantom(ElemTy::Float, &[n])),
                ],
                &["threads".to_string()],
                &ExecOptions { group_size: 256, simd_width: 32, sample },
            ).unwrap();
            r.stats
        };
        let full = run(None);
        let sampled = run(Some(Sampling { max_outer_iters: chunks, max_chunks: chunks }));
        let rel = |a: f64, b: f64| if b == 0.0 { 0.0 } else { (a - b).abs() / b };
        prop_assert!(rel(sampled.flops, full.flops) < 1e-6);
        prop_assert!(rel(sampled.issue_cycles, full.issue_cycles) < 1e-6);
        prop_assert!(rel(sampled.global_bytes, full.global_bytes) < 1e-6);
        prop_assert_eq!(sampled.total_threads, full.total_threads);
    }

    #[test]
    fn balancer_choice_is_optimal(
        speeds in prop::collection::vec(1.0f64..50.0, 1..5),
        queued in prop::collection::vec(0usize..6, 1..5),
    ) {
        let k = speeds.len().min(queued.len());
        let speeds = &speeds[..k];
        let queued = &queued[..k];
        let mut b = Balancer::new(speeds);
        for (d, q) in queued.iter().enumerate() {
            for _ in 0..*q {
                b.on_submit(d);
            }
        }
        let choice = b.choose("k");
        // Brute force the scenario minimum.
        let times = b.estimates("k");
        let scenario = |d: usize| -> f64 {
            (0..k)
                .map(|e| (queued[e] + usize::from(e == d)) as f64 * times[e])
                .fold(0.0, f64::max)
        };
        let best = (0..k).map(scenario).fold(f64::INFINITY, f64::min);
        prop_assert!(scenario(choice) <= best * (1.0 + 1e-12), "choice {choice} not optimal");
    }

    #[test]
    fn cluster_sum_is_exact_for_any_shape(
        total in 1u64..40_000,
        grain in 1u64..5_000,
        nodes in 1usize..6,
        seed in 0u64..1000,
    ) {
        struct Sum {
            grain: u64,
        }
        impl ClusterApp for Sum {
            type Input = (u64, u64);
            type Output = u64;
            fn step(&self, &(lo, hi): &(u64, u64)) -> DcStep<(u64, u64)> {
                if hi - lo <= self.grain {
                    DcStep::Leaf
                } else {
                    let mid = lo + (hi - lo) / 2;
                    DcStep::Divide(vec![(lo, mid), (mid, hi)])
                }
            }
            fn combine(&self, _: &(u64, u64), c: Vec<u64>) -> u64 {
                c.into_iter().sum()
            }
            fn input_bytes(&self, _: &(u64, u64)) -> u64 {
                64
            }
            fn output_bytes(&self, _: &u64) -> u64 {
                8
            }
        }
        let rt = CpuLeafRuntime(|_n, &(lo, hi): &(u64, u64), _t| {
            (SimTime::from_micros(1 + hi - lo), (lo..hi).sum::<u64>())
        });
        let mut cs = ClusterSim::new(
            Sum { grain },
            rt,
            SimConfig { nodes, seed, ..SimConfig::default() },
        );
        let out = cs.run_root((0, total));
        prop_assert_eq!(out, total * (total - 1) / 2);
    }
}
