//! Model-based tests of the slab-heap event engine: random interleavings of
//! schedule / cancel / step are replayed against a naive reference model (a
//! sorted vec of `(time, seq)` pairs) and every observable — firing order,
//! `events_fired`, `pending()`, `peek_time()`, `cancel()` return values —
//! must agree exactly.
//!
//! This is the guard rail for the zero-alloc engine core: the slab arena,
//! the 4-ary heap and the tombstone cancellation are all invisible if and
//! only if these properties hold.

use cashmere_des::{EventHandle, Sim, SimTime};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// One operation of a random schedule/cancel/step interleaving.
///
/// Indices are interpreted modulo the live sets at replay time so every
/// generated sequence is valid by construction.
#[derive(Debug, Clone)]
enum Op {
    /// Schedule an event `delta` ns past the current virtual time, tagged
    /// with a unique id the firing log records.
    Schedule { delta: u64 },
    /// Cancel the `i`-th (mod len) outstanding handle — which may already
    /// have fired, exercising the spent-handle path.
    Cancel { i: usize },
    /// Fire the next pending event, if any.
    Step,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The shimmed `prop_oneof!` picks uniformly; duplicate arms to weight
    // scheduling over cancelling (3 : 1 : 2).
    prop_oneof![
        (0u64..5_000).prop_map(|delta| Op::Schedule { delta }),
        (0u64..5_000).prop_map(|delta| Op::Schedule { delta }),
        (0u64..5_000).prop_map(|delta| Op::Schedule { delta }),
        (0usize..64).prop_map(|i| Op::Cancel { i }),
        Just(Op::Step),
        Just(Op::Step),
    ]
}

/// Naive reference: a vec of `(fire_time, id)` kept unsorted, scanned for
/// the minimum `(time, seq)` on every step — obviously correct, O(n) per
/// operation.
#[derive(Default)]
struct Model {
    /// `(fire_time_ns, seq, id)` of every still-pending event.
    pending: Vec<(u64, u64, u64)>,
    now: u64,
    next_seq: u64,
    fired: Vec<u64>,
}

impl Model {
    fn schedule(&mut self, delta: u64, id: u64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push((self.now + delta, seq, id));
        seq
    }

    /// Cancel by seq; false if the event already fired or was cancelled.
    fn cancel(&mut self, seq: u64) -> bool {
        match self.pending.iter().position(|&(_, s, _)| s == seq) {
            Some(i) => {
                self.pending.swap_remove(i);
                true
            }
            None => false,
        }
    }

    /// Earliest pending `(time, seq)`, if any.
    fn peek(&self) -> Option<(u64, u64)> {
        self.pending.iter().map(|&(t, s, _)| (t, s)).min()
    }

    fn step(&mut self) -> bool {
        let Some((t, s)) = self.peek() else {
            return false;
        };
        let i = self
            .pending
            .iter()
            .position(|&(pt, ps, _)| (pt, ps) == (t, s))
            .unwrap();
        let (t, _, id) = self.pending.swap_remove(i);
        self.now = t;
        self.fired.push(id);
        true
    }
}

/// Replay `ops` against both the real engine and the model, checking every
/// observable after every operation.
fn check_interleaving(ops: &[Op]) -> Result<(), TestCaseError> {
    let log: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
    let mut sim: Sim<()> = Sim::new(7);
    let mut model = Model::default();
    // Handles of every event ever scheduled (spent or not), so Cancel can
    // target already-fired events too.
    let mut handles: Vec<(EventHandle, u64)> = Vec::new();
    let mut next_id = 0u64;
    let mut world = ();

    for op in ops {
        match op {
            Op::Schedule { delta } => {
                let id = next_id;
                next_id += 1;
                let log = Rc::clone(&log);
                let h = sim.schedule_in(SimTime::from_nanos(*delta), move |_: &mut (), _| {
                    log.borrow_mut().push(id);
                });
                let seq = model.schedule(*delta, id);
                handles.push((h, seq));
            }
            Op::Cancel { i } => {
                if handles.is_empty() {
                    continue;
                }
                let (h, seq) = handles[i % handles.len()];
                let got = sim.cancel(h);
                let want = model.cancel(seq);
                prop_assert_eq!(got, want, "cancel(seq={}) disagrees", seq);
            }
            Op::Step => {
                let got = sim.step(&mut world);
                let want = model.step();
                prop_assert_eq!(got, want, "step() disagrees");
            }
        }
        // Observables agree after *every* operation, not just at the end.
        prop_assert_eq!(sim.pending(), model.pending.len());
        prop_assert_eq!(
            sim.peek_time(),
            model.peek().map(|(t, _)| SimTime::from_nanos(t))
        );
        if let Some((t, _)) = model.peek() {
            prop_assert!(sim.now().as_nanos() <= t);
        }
    }

    // Drain everything left and compare the full firing order.
    while sim.step(&mut world) {
        prop_assert!(model.step());
    }
    prop_assert!(!model.step());
    prop_assert_eq!(sim.events_fired(), model.fired.len() as u64);
    prop_assert_eq!(&*log.borrow(), &model.fired);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn engine_matches_reference_model(ops in prop::collection::vec(op_strategy(), 1..200)) {
        check_interleaving(&ops)?;
    }
}

// ---- deterministic regressions for the satellite bug fixes ----

#[test]
fn cancel_after_fire_returns_false_and_pending_stays_accurate() {
    let mut sim: Sim<u32> = Sim::new(1);
    let h = sim.schedule_at(SimTime::from_nanos(5), |w: &mut u32, _| *w += 1);
    let _live = sim.schedule_at(SimTime::from_nanos(9), |w: &mut u32, _| *w += 10);
    let mut w = 0u32;
    assert!(sim.step(&mut w));
    assert_eq!(w, 1);
    // The seed engine underflowed pending() here: the spent handle's seq
    // went into the cancelled set while the queue no longer held it.
    assert!(!sim.cancel(h), "spent handle must not cancel");
    assert!(!sim.cancel(h), "idempotently false");
    assert_eq!(sim.pending(), 1);
    sim.run(&mut w);
    assert_eq!(w, 11);
    assert_eq!(sim.pending(), 0);
}

#[test]
fn peek_time_is_a_pure_read() {
    let mut sim: Sim<()> = Sim::new(1);
    let keep = sim.schedule_at(SimTime::from_nanos(10), |_: &mut (), _| {});
    let kill = sim.schedule_at(SimTime::from_nanos(3), |_: &mut (), _| {});
    assert!(sim.cancel(kill));
    // peek_time takes &self now; repeated calls agree and report the live
    // minimum, never the tombstone.
    assert_eq!(sim.peek_time(), Some(SimTime::from_nanos(10)));
    assert_eq!(sim.peek_time(), Some(SimTime::from_nanos(10)));
    assert!(sim.cancel(keep));
    assert_eq!(sim.peek_time(), None);
}

#[test]
fn dense_same_time_events_fire_in_schedule_order() {
    let log: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
    let mut sim: Sim<()> = Sim::new(1);
    for id in 0..100u64 {
        let log = Rc::clone(&log);
        sim.schedule_at(SimTime::from_nanos(42), move |_: &mut (), _| {
            log.borrow_mut().push(id);
        });
    }
    sim.run(&mut ());
    assert_eq!(*log.borrow(), (0..100).collect::<Vec<_>>());
}
