//! Cross-crate integration tests: the full pipeline — MCPL source →
//! registry → simulated heterogeneous cluster → verified results —
//! exercised end to end, plus determinism guarantees across the stack.

use cashmere::{build_cluster, initialize, ClusterSpec, KernelRegistry, RuntimeConfig};
use cashmere_apps::kmeans::{KmeansApp, KmeansProblem};
use cashmere_apps::matmul::{MatmulApp, MatmulProblem};
use cashmere_apps::nbody::{NbodyApp, NbodyProblem};
use cashmere_apps::raytracer::{RaytracerApp, RaytracerProblem};
use cashmere_apps::{AppMode, KernelSet};
use cashmere_netsim::NetConfig;
use cashmere_satin::SimConfig;

fn functional() -> RuntimeConfig {
    RuntimeConfig {
        functional: true,
        ..RuntimeConfig::default()
    }
}

/// A mixed cluster exercising every device class at once.
fn mixed_spec() -> ClusterSpec {
    ClusterSpec {
        node_devices: vec![
            vec!["gtx480".to_string()],
            vec!["k20".to_string(), "xeon_phi".to_string()],
            vec!["hd7970".to_string()],
            vec!["titan".to_string()],
        ],
    }
}

#[test]
fn all_four_apps_compile_for_all_devices() {
    let specs = [
        ClusterSpec::paper_hetero_nbody(),
        ClusterSpec::homogeneous(2, "gtx480"),
    ];
    let registries = [
        MatmulApp::registry(KernelSet::Optimized),
        KmeansApp::registry(KernelSet::Optimized),
        NbodyApp::registry(KernelSet::Optimized),
        RaytracerApp::registry(KernelSet::Optimized),
    ];
    for reg in &registries {
        for spec in &specs {
            let rep = initialize(reg, spec, &NetConfig::qdr_infiniband());
            assert!(
                rep.suggestions.is_empty(),
                "uncovered devices: {:?}",
                rep.suggestions
            );
            assert!(rep.kernels_compiled > 0);
        }
    }
}

#[test]
fn matmul_on_mixed_cluster_matches_reference() {
    let pr = MatmulProblem {
        n: 96,
        m: 40,
        p: 56,
    };
    let app = MatmulApp::real(pr, 24, 4, 123);
    let root = app.row_job(0, pr.n);
    let reference = app.data_ref().unwrap().reference_rows(&pr, 0, pr.n);
    let mut cluster = build_cluster(
        app,
        MatmulApp::registry(KernelSet::Optimized),
        &mixed_spec(),
        SimConfig::default(),
        functional(),
    )
    .unwrap();
    let segs = cluster.run_root(root);
    let got = cashmere_apps::matmul::assemble(&segs, pr.n, pr.m);
    assert_eq!(got.len(), reference.len());
    for (g, r) in got.iter().zip(&reference) {
        assert!((g - r).abs() < 1e-3, "{g} vs {r}");
    }
}

#[test]
fn kmeans_iterations_on_mixed_cluster_match_cpu() {
    let pr = KmeansProblem {
        n: 4000,
        k: 12,
        d: 4,
        iterations: 2,
    };
    // CPU-only reference evolution.
    let ref_app = KmeansApp::real(pr, 4000, 1, 77);
    for _ in 0..pr.iterations {
        let out = ref_app.cpu_assign(0, pr.n);
        ref_app.update_centroids(&out);
    }
    let ref_cent = ref_app.centroids.read().unwrap().clone();

    // Cluster evolution on mixed devices.
    let app = KmeansApp::real(pr, 1000, 4, 77);
    let cents = app.centroids.clone();
    let mut cluster = build_cluster(
        app,
        KmeansApp::registry(KernelSet::Optimized),
        &mixed_spec(),
        SimConfig::default(),
        functional(),
    )
    .unwrap();
    let (_, elapsed) = cashmere_apps::kmeans::run_iterations(&mut cluster, &pr, &cents, true);
    assert!(elapsed > cashmere_des::SimTime::ZERO);
    let got = cents.read().unwrap().clone();
    assert_eq!(got.len(), ref_cent.len());
    for (g, r) in got.iter().zip(&ref_cent) {
        assert!((g - r).abs() < 1e-3, "{g} vs {r}");
    }
}

#[test]
fn raytracer_deterministic_across_cluster_shapes() {
    // The same image must come out regardless of how the work is split
    // across nodes and devices.
    let pr = RaytracerProblem {
        width: 24,
        height: 16,
        samples: 4,
        seed: 5,
    };
    let render = |spec: &ClusterSpec, grain: u64| -> Vec<f64> {
        let app = RaytracerApp::new(pr, AppMode::Real, grain, 2);
        let mut cluster = build_cluster(
            app,
            RaytracerApp::registry(KernelSet::Unoptimized),
            spec,
            SimConfig::default(),
            functional(),
        )
        .unwrap();
        let segs = cluster.run_root((0, pr.pixels()));
        let mut out = Vec::new();
        for s in &segs {
            out.extend_from_slice(s.rgb.as_ref().unwrap());
        }
        out
    };
    let a = render(&ClusterSpec::homogeneous(1, "gtx480"), 512);
    let b = render(&ClusterSpec::homogeneous(3, "k20"), 96);
    assert_eq!(a, b, "work division must not change the image");
}

#[test]
fn nbody_hetero_cluster_matches_reference() {
    let pr = NbodyProblem {
        n: 333,
        iterations: 1,
        dt: 0.01,
    };
    let app = NbodyApp::real(pr, 84, 3, 2);
    let (ref_pos, _) = app.state.read().unwrap().reference_step(0, pr.n, pr.dt);
    let mut cluster = build_cluster(
        app,
        NbodyApp::registry(KernelSet::Optimized),
        &mixed_spec(),
        SimConfig::default(),
        functional(),
    )
    .unwrap();
    let segs = cluster.run_root((0, pr.n));
    let mut got = Vec::new();
    for s in &segs {
        got.extend_from_slice(s.pos.as_ref().unwrap());
    }
    for (g, r) in got.iter().zip(&ref_pos) {
        assert!((g - r).abs() <= 1e-4 * (1.0 + r.abs()), "{g} vs {r}");
    }
}

#[test]
fn whole_stack_is_deterministic() {
    let run = || {
        let pr = KmeansProblem {
            n: 2_000_000,
            k: 512,
            d: 4,
            iterations: 1,
        };
        let app = KmeansApp::phantom(pr, 250_000, 8);
        let mut cluster = build_cluster(
            app,
            KmeansApp::registry(KernelSet::Optimized),
            &mixed_spec(),
            SimConfig {
                seed: 9,
                max_concurrent_leaves: 2,
                ..SimConfig::default()
            },
            RuntimeConfig::default(),
        )
        .unwrap();
        let _ = cluster.run_root((0, pr.n));
        (
            cluster.report().makespan,
            cluster.report().steals_ok,
            cluster.leaf_runtime().kernels_run,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn registry_rejects_unknown_kernel_gracefully() {
    let reg = KernelRegistry::new(cashmere_hwdesc::standard_hierarchy());
    let h = reg.hierarchy();
    let dev = h.id("gtx480").unwrap();
    assert!(reg.select("nope", dev).is_none());
    let sugg = reg.coverage_suggestions("nope", &[dev]);
    assert_eq!(sugg.len(), 1);
}
