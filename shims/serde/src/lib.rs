//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! Instead of serde's visitor architecture, values serialize into a small
//! [`Content`] tree that `serde_json` (the sibling shim) renders to and
//! parses from JSON text. The derive macros (`serde_derive` shim) generate
//! `Serialize::to_content` / `Deserialize::from_content` impls against this
//! model. All producers and consumers are in-tree, so the reduced data model
//! is sufficient — and serialization of unordered containers is explicitly
//! canonicalized (sorted) so that serialized output is byte-stable, which
//! the workspace's determinism tests rely on.

use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every serializable value lowers into.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Key-value pairs in serialization order. String-keyed maps render as
    /// JSON objects; anything else renders as an array of `[key, value]`.
    Map(Vec<(Content, Content)>),
}

impl Content {
    pub fn as_map(&self) -> Option<&[(Content, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }

    /// Total order used to canonicalize unordered containers before
    /// serialization (so HashMap/HashSet output is byte-stable).
    pub fn canonical_cmp(&self, other: &Content) -> Ordering {
        fn rank(c: &Content) -> u8 {
            match c {
                Content::Null => 0,
                Content::Bool(_) => 1,
                Content::U64(_) => 2,
                Content::I64(_) => 3,
                Content::F64(_) => 4,
                Content::Str(_) => 5,
                Content::Seq(_) => 6,
                Content::Map(_) => 7,
            }
        }
        match (self, other) {
            (Content::Bool(a), Content::Bool(b)) => a.cmp(b),
            (Content::U64(a), Content::U64(b)) => a.cmp(b),
            (Content::I64(a), Content::I64(b)) => a.cmp(b),
            (Content::F64(a), Content::F64(b)) => a.total_cmp(b),
            (Content::Str(a), Content::Str(b)) => a.cmp(b),
            (Content::Seq(a), Content::Seq(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    let o = x.canonical_cmp(y);
                    if o != Ordering::Equal {
                        return o;
                    }
                }
                a.len().cmp(&b.len())
            }
            (Content::Map(a), Content::Map(b)) => {
                for ((ka, va), (kb, vb)) in a.iter().zip(b.iter()) {
                    let o = ka.canonical_cmp(kb);
                    if o != Ordering::Equal {
                        return o;
                    }
                    let o = va.canonical_cmp(vb);
                    if o != Ordering::Equal {
                        return o;
                    }
                }
                a.len().cmp(&b.len())
            }
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

/// Deserialization error: what was expected, what arrived, for which type.
#[derive(Debug, Clone)]
pub struct DeError {
    message: String,
}

impl DeError {
    pub fn custom(message: impl Into<String>) -> DeError {
        DeError {
            message: message.into(),
        }
    }

    pub fn expected(what: &str, ty: &str, got: &Content) -> DeError {
        DeError {
            message: format!("expected {what} for `{ty}`, got {}", got.kind()),
        }
    }

    pub fn missing_field(field: &str, ty: &str) -> DeError {
        DeError {
            message: format!("missing field `{field}` in `{ty}`"),
        }
    }

    pub fn unknown_variant(variant: &str, ty: &str) -> DeError {
        DeError {
            message: format!("unknown variant `{variant}` of `{ty}`"),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

pub trait Serialize {
    fn to_content(&self) -> Content;
}

pub trait Deserialize: Sized {
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

/// Derive-macro helper: fetch and decode a named struct field from a map,
/// treating an absent key as `null` (so `Option` fields tolerate omission).
pub fn __field<T: Deserialize>(content: &Content, name: &str, ty: &str) -> Result<T, DeError> {
    let map = content
        .as_map()
        .ok_or_else(|| DeError::expected("map", ty, content))?;
    for (k, v) in map {
        if k.as_str() == Some(name) {
            return T::from_content(v);
        }
    }
    T::from_content(&Content::Null).map_err(|_| DeError::missing_field(name, ty))
}

// ---------------------------------------------------------------------------
// Primitive and std-container impls.

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v: u64 = match *c {
                    Content::U64(v) => v,
                    Content::I64(v) if v >= 0 => v as u64,
                    Content::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => v as u64,
                    ref other => return Err(DeError::expected("unsigned integer", stringify!($t), other)),
                };
                <$t>::try_from(v).map_err(|_| DeError::custom(
                    format!("{v} out of range for {}", stringify!($t)),
                ))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                let v: i64 = match *c {
                    Content::I64(v) => v,
                    Content::U64(v) if v <= i64::MAX as u64 => v as i64,
                    Content::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => v as i64,
                    ref other => return Err(DeError::expected("integer", stringify!($t), other)),
                };
                <$t>::try_from(v).map_err(|_| DeError::custom(
                    format!("{v} out of range for {}", stringify!($t)),
                ))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, DeError> {
                match *c {
                    Content::F64(v) => Ok(v as $t),
                    Content::U64(v) => Ok(v as $t),
                    Content::I64(v) => Ok(v as $t),
                    ref other => Err(DeError::expected("number", stringify!($t), other)),
                }
            }
        }
    )*};
}
ser_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", "bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", "String", other)),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("one-char string", "char", other)),
        }
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(()),
            other => Err(DeError::expected("null", "()", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::expected("sequence", "Vec", other)),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![self.0.to_content(), self.1.to_content()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c.as_seq() {
            Some([a, b]) => Ok((A::from_content(a)?, B::from_content(b)?)),
            _ => Err(DeError::expected("2-element sequence", "tuple", c)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_content(&self) -> Content {
        Content::Seq(vec![
            self.0.to_content(),
            self.1.to_content(),
            self.2.to_content(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c.as_seq() {
            Some([a, b, cc]) => Ok((
                A::from_content(a)?,
                B::from_content(b)?,
                C::from_content(cc)?,
            )),
            _ => Err(DeError::expected("3-element sequence", "tuple", c)),
        }
    }
}

/// Maps serialize with entries sorted by canonical key order so HashMap
/// iteration order never leaks into serialized bytes.
impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        let mut entries: Vec<(Content, Content)> = self
            .iter()
            .map(|(k, v)| (k.to_content(), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.canonical_cmp(&b.0));
        Content::Map(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_content(c: &Content) -> Result<Self, DeError> {
        map_entries(c, "HashMap")
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_content(), v.to_content()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        map_entries(c, "BTreeMap")
    }
}

/// Accept either map content or a sequence of `[key, value]` pairs.
fn map_entries<K: Deserialize, V: Deserialize, M: FromIterator<(K, V)>>(
    c: &Content,
    ty: &str,
) -> Result<M, DeError> {
    match c {
        Content::Map(entries) => entries
            .iter()
            .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
            .collect(),
        Content::Seq(items) => items
            .iter()
            .map(|pair| match pair.as_seq() {
                Some([k, v]) => Ok((K::from_content(k)?, V::from_content(v)?)),
                _ => Err(DeError::expected("[key, value] pair", ty, pair)),
            })
            .collect(),
        other => Err(DeError::expected("map", ty, other)),
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_content(&self) -> Content {
        let mut items: Vec<Content> = self.iter().map(Serialize::to_content).collect();
        items.sort_by(|a, b| a.canonical_cmp(b));
        Content::Seq(items)
    }
}

impl<T, S> Deserialize for HashSet<T, S>
where
    T: Deserialize + Eq + Hash,
    S: std::hash::BuildHasher + Default,
{
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::expected("sequence", "HashSet", other)),
        }
    }
}

impl Serialize for std::time::Duration {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            (Content::Str("secs".into()), Content::U64(self.as_secs())),
            (
                Content::Str("nanos".into()),
                Content::U64(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let secs: u64 = __field(c, "secs", "Duration")?;
        let nanos: u32 = __field(c, "nanos", "Duration")?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashmap_serialization_is_canonical() {
        let mut m = HashMap::new();
        for i in 0..50u64 {
            m.insert(i, i * 2);
        }
        let a = m.to_content();
        let b = m.clone().to_content();
        assert_eq!(a, b);
        if let Content::Map(entries) = &a {
            let keys: Vec<u64> = entries
                .iter()
                .map(|(k, _)| match k {
                    Content::U64(v) => *v,
                    _ => unreachable!(),
                })
                .collect();
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            assert_eq!(keys, sorted);
        } else {
            panic!("map expected");
        }
    }

    #[test]
    fn option_roundtrip() {
        let some = Some(3u32).to_content();
        let none: Content = Option::<u32>::None.to_content();
        assert_eq!(Option::<u32>::from_content(&some).unwrap(), Some(3));
        assert_eq!(Option::<u32>::from_content(&none).unwrap(), None);
    }
}
