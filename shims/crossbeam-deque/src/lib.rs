//! Offline stand-in for the subset of `crossbeam-deque` this workspace
//! uses: `Worker::new_lifo`, `Stealer`, `Injector`, and the `Steal` enum.
//! Backed by `Mutex<VecDeque>` rather than the lock-free Chase–Lev deque —
//! semantically equivalent (owner pushes/pops one end, thieves steal the
//! other), slower under heavy contention, which the in-tree benchmarks
//! accept for an offline build.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    Empty,
    Success(T),
    Retry,
}

impl<T> Steal<T> {
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(v) => Some(v),
            _ => None,
        }
    }
}

/// The owner side of a LIFO deque. The owner pushes and pops the back;
/// stealers take from the front.
pub struct Worker<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    pub fn new_lifo() -> Worker<T> {
        Worker {
            queue: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    pub fn push(&self, value: T) {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(value);
    }

    pub fn pop(&self) -> Option<T> {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_back()
    }

    pub fn is_empty(&self) -> bool {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_empty()
    }

    pub fn len(&self) -> usize {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }
}

/// The thief side of a deque: steals from the FIFO end.
pub struct Stealer<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            queue: Arc::clone(&self.queue),
        }
    }
}

impl<T> Stealer<T> {
    pub fn steal(&self) -> Steal<T> {
        match self
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front()
        {
            Some(v) => Steal::Success(v),
            None => Steal::Empty,
        }
    }
}

/// A FIFO queue shared by all workers for externally injected jobs.
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Injector::new()
    }
}

impl<T> Injector<T> {
    pub fn new() -> Injector<T> {
        Injector {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    pub fn push(&self, value: T) {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(value);
    }

    pub fn steal(&self) -> Steal<T> {
        match self
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front()
        {
            Some(v) => Steal::Success(v),
            None => Steal::Empty,
        }
    }

    /// Grab one job for the caller and move a small batch into `dest`.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut q = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        match q.pop_front() {
            None => Steal::Empty,
            Some(first) => {
                // Move up to half of the remainder (capped) to the worker.
                let batch = (q.len() / 2).min(16);
                if batch > 0 {
                    let mut dq = dest.queue.lock().unwrap_or_else(PoisonError::into_inner);
                    for _ in 0..batch {
                        if let Some(v) = q.pop_front() {
                            dq.push_back(v);
                        }
                    }
                }
                Steal::Success(first)
            }
        }
    }

    pub fn is_empty(&self) -> bool {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_owner_fifo_thief() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal(), Steal::Success(1)); // thief takes oldest
        assert_eq!(w.pop(), Some(3)); // owner takes newest
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert!(s.steal().is_empty());
    }

    #[test]
    fn injector_batches_into_worker() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let w = Worker::new_lifo();
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
        assert!(!w.is_empty());
    }
}
