//! Offline stand-in for the subset of `parking_lot` this workspace uses:
//! a poison-free `Mutex` whose `lock()` returns the guard directly, and a
//! `Condvar` whose wait methods take the guard by `&mut`. Implemented over
//! `std::sync`; poisoned locks are transparently recovered (parking_lot has
//! no poisoning).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard wrapping the std guard in an `Option` so `Condvar::wait` can move
/// it out and back while the caller holds `&mut`.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken during wait")
    }
}

pub struct Condvar(sync::Condvar);

#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar(sync::Condvar::new())
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard taken during wait");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard taken during wait");
        let (g, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, c) = &*p2;
            *m.lock() = true;
            c.notify_all();
        });
        let (m, c) = &*pair;
        let mut g = m.lock();
        while !*g {
            let r = c.wait_for(&mut g, Duration::from_millis(50));
            let _ = r.timed_out();
        }
        assert!(*g);
        t.join().unwrap();
    }
}
