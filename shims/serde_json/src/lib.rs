//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! `to_string` / `to_string_pretty` / `from_str` over the serde shim's
//! [`Content`] tree. String-keyed maps render as JSON objects; maps with
//! non-string keys render as arrays of `[key, value]` pairs (and parse back
//! through the map impls on the serde side).

use serde::{Content, DeError, Deserialize, Serialize};
use std::fmt;

#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error::new(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), Some(2), 0);
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_content(&content)?)
}

pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(e.to_string()))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Writer.

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` prints the shortest representation that round-trips.
        out.push_str(&format!("{v:?}"));
    } else {
        // JSON has no Inf/NaN; serialize as null like serde_json's
        // arbitrary-precision-off behaviour.
        out.push_str("null");
    }
}

fn write_content(out: &mut String, c: &Content, indent: Option<usize>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(out, *v),
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                    if indent.is_none() {
                        // compact: no space
                    }
                }
                newline_indent(out, indent, depth + 1);
                write_content(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            let all_str_keys = entries.iter().all(|(k, _)| matches!(k, Content::Str(_)));
            if all_str_keys {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_content(out, k, indent, depth + 1);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    write_content(out, v, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            } else {
                // Non-string keys: array of [key, value] pairs.
                let as_seq = Content::Seq(
                    entries
                        .iter()
                        .map(|(k, v)| Content::Seq(vec![k.clone(), v.clone()]))
                        .collect(),
                );
                write_content(out, &as_seq, indent, depth);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Parser.

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.eat_lit("null") {
                    Ok(Content::Null)
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_lit("true") {
                    Ok(Content::Bool(true))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_lit("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(Error::new(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `]` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    entries.push((Content::Str(key), val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected `,` or `}}` at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::new(format!("invalid number at byte {start}")));
        }
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_containers() {
        let v: Vec<(String, Option<f64>)> =
            vec![("a".into(), Some(1.5)), ("b\n\"x\"".into(), None)];
        let s = to_string_pretty(&v).unwrap();
        let back: Vec<(String, Option<f64>)> = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn u64_fidelity() {
        let v = u64::MAX;
        let s = to_string(&v).unwrap();
        let back: u64 = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
