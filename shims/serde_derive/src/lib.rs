//! Offline stand-in for `serde_derive`: generates `Serialize`/`Deserialize`
//! impls against the in-tree `serde` shim's `Content` model.
//!
//! No `syn`/`quote` — the type definition is parsed directly from the
//! `proc_macro::TokenStream`. Supported shapes are exactly the ones used in
//! this workspace: non-generic structs (named, tuple, unit) and enums with
//! unit / tuple / struct variants, externally tagged. `#[serde(...)]` field
//! attributes are not supported and generics are rejected with a clear
//! panic at expansion time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct TypeDef {
    name: String,
    kind: Kind,
}

#[derive(Debug)]
enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Split a token list on commas at angle-bracket depth zero. (Commas inside
/// `(..)`/`[..]`/`{..}` are already hidden inside `Group` tokens; only
/// generic argument lists like `HashMap<K, V>` need the depth counter.)
fn split_commas(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle: i32 = 0;
    for t in tokens {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Drop leading `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then the bracketed attribute group.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return &tokens[i..],
        }
    }
}

fn named_fields(group_tokens: Vec<TokenTree>) -> Vec<String> {
    split_commas(group_tokens)
        .into_iter()
        .filter_map(|chunk| {
            let chunk = skip_attrs_and_vis(&chunk);
            match chunk.first() {
                Some(TokenTree::Ident(id)) => Some(id.to_string()),
                _ => None,
            }
        })
        .collect()
}

fn tuple_arity(group_tokens: Vec<TokenTree>) -> usize {
    split_commas(group_tokens)
        .into_iter()
        .filter(|c| !skip_attrs_and_vis(c).is_empty())
        .count()
}

fn parse_def(input: TokenStream) -> TypeDef {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let tokens = skip_attrs_and_vis(&tokens);
    let mut it = tokens.iter();
    let keyword = loop {
        match it.next() {
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
            }
            Some(_) => {}
            None => panic!("serde_derive shim: no struct/enum keyword found"),
        }
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other:?}"),
    };
    let next = it.next();
    if let Some(TokenTree::Punct(p)) = next {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic type `{name}` is not supported");
        }
    }
    let kind = if keyword == "enum" {
        let body = match next {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => panic!("serde_derive shim: expected enum body, got {other:?}"),
        };
        let variants = split_commas(body.into_iter().collect())
            .into_iter()
            .filter_map(|chunk| {
                let chunk = skip_attrs_and_vis(&chunk);
                let vname = match chunk.first() {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    _ => return None,
                };
                let shape = match chunk.get(1) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        Shape::Tuple(tuple_arity(g.stream().into_iter().collect()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Shape::Named(named_fields(g.stream().into_iter().collect()))
                    }
                    _ => Shape::Unit,
                };
                Some(Variant { name: vname, shape })
            })
            .collect();
        Kind::Enum(variants)
    } else {
        match next {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(named_fields(g.stream().into_iter().collect()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(tuple_arity(g.stream().into_iter().collect()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("serde_derive shim: unsupported struct body {other:?}"),
        }
    };
    TypeDef { name, kind }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse_def(input);
    let name = &def.name;
    let body = match &def.kind {
        Kind::UnitStruct => "::serde::Content::Null".to_string(),
        Kind::TupleStruct(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(vec![{}])", items.join(", "))
        }
        Kind::NamedStruct(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::serde::Content::Str(String::from(\"{f}\")), \
                         ::serde::Serialize::to_content(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Content::Map(vec![{}])", items.join(", "))
        }
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vn} => ::serde::Content::Str(String::from(\"{vn}\")),"
                        ),
                        Shape::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Content::Map(vec![(\
                             ::serde::Content::Str(String::from(\"{vn}\")), \
                             ::serde::Serialize::to_content(__f0))]),"
                        ),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_content(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Content::Map(vec![(\
                                 ::serde::Content::Str(String::from(\"{vn}\")), \
                                 ::serde::Content::Seq(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let binds = fields.join(", ");
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::serde::Content::Str(String::from(\"{f}\")), \
                                         ::serde::Serialize::to_content({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Content::Map(vec![(\
                                 ::serde::Content::Str(String::from(\"{vn}\")), \
                                 ::serde::Content::Map(vec![{}]))]),",
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    );
    out.parse()
        .expect("serde_derive shim: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse_def(input);
    let name = &def.name;
    let body = match &def.kind {
        Kind::UnitStruct => format!("{{ let _ = __c; Ok({name}) }}"),
        Kind::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_content(__c)?))")
        }
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&__seq[{i}])?"))
                .collect();
            format!(
                "{{ let __seq = __c.as_seq().ok_or_else(|| \
                 ::serde::DeError::expected(\"sequence\", \"{name}\", __c))?;\n\
                 if __seq.len() != {n} {{ return Err(::serde::DeError::custom(\
                 format!(\"expected {n} elements for {name}, got {{}}\", __seq.len()))); }}\n\
                 Ok({name}({})) }}",
                items.join(", ")
            )
        }
        Kind::NamedStruct(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__field(__c, \"{f}\", \"{name}\")?,"))
                .collect();
            format!("Ok({name} {{ {} }})", items.join("\n"))
        }
        Kind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => None,
                        Shape::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(\
                             ::serde::Deserialize::from_content(__payload)?)),"
                        )),
                        Shape::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_content(&__seq[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ let __seq = __payload.as_seq().ok_or_else(|| \
                                 ::serde::DeError::expected(\"sequence\", \"{name}::{vn}\", __payload))?;\n\
                                 if __seq.len() != {n} {{ return Err(::serde::DeError::custom(\
                                 format!(\"expected {n} elements for {name}::{vn}, got {{}}\", __seq.len()))); }}\n\
                                 Ok({name}::{vn}({})) }}",
                                items.join(", ")
                            ))
                        }
                        Shape::Named(fields) => {
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::__field(__payload, \"{f}\", \
                                         \"{name}::{vn}\")?,"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => Ok({name}::{vn} {{ {} }}),",
                                items.join("\n")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __c {{\n\
                 ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                 {}\n\
                 __other => Err(::serde::DeError::unknown_variant(__other, \"{name}\")),\n\
                 }},\n\
                 ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __payload) = &__entries[0];\n\
                 let __tag = __tag.as_str().ok_or_else(|| \
                 ::serde::DeError::expected(\"string tag\", \"{name}\", __tag))?;\n\
                 match __tag {{\n\
                 {}\n\
                 __other => Err(::serde::DeError::unknown_variant(__other, \"{name}\")),\n\
                 }}\n\
                 }},\n\
                 __other => Err(::serde::DeError::expected(\"enum\", \"{name}\", __other)),\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_content(__c: &::serde::Content) -> \
         ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    );
    out.parse()
        .expect("serde_derive shim: generated Deserialize impl must parse")
}
