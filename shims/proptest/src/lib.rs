//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Strategies generate values from a deterministic SplitMix64 stream seeded
//! by the test's module path and name, so every run of a test sees the same
//! case sequence. There is no shrinking: a failing case reports its inputs
//! (Debug) and the case index instead.

use std::fmt;
use std::ops::Range;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG.

/// Deterministic per-test random stream (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed from a stable string (FNV-1a), e.g. the test's full path.
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

// ---------------------------------------------------------------------------
// Strategy core.

pub trait Strategy {
    type Value;

    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Recursive strategies: `depth` levels of `recurse` over the leaf, with
    /// a 50/50 leaf-vs-deeper choice at each level bounding tree size.
    /// (`desired_size` and `expected_branch_size` are accepted for API
    /// compatibility and ignored.)
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(cur).boxed();
            cur = Union::new(vec![leaf.clone(), deeper]).boxed();
        }
        cur
    }
}

pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.0.gen_value(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Uniform choice among boxed alternatives (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].gen_value(rng)
    }
}

/// Always the same (cloned) value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn gen_value(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

/// String "regex" strategy. The pattern is not interpreted: arbitrary
/// printable strings (with occasional newlines/unicode) are produced, which
/// is what the in-tree fuzz-ish tests (`"\\PC*"`) need.
impl Strategy for &str {
    type Value = String;
    fn gen_value(&self, rng: &mut TestRng) -> String {
        let len = rng.below(48);
        let mut out = String::with_capacity(len);
        for _ in 0..len {
            let c = match rng.below(20) {
                0 => '\n',
                1 => '\u{3bb}',   // λ
                2 => '\u{1F600}', // 😀
                3 => '"',
                4 => '\\',
                _ => char::from(32 + rng.below(95) as u8),
            };
            out.push(c);
        }
        out
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.gen_value(rng), self.1.gen_value(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.gen_value(rng),
            self.1.gen_value(rng),
            self.2.gen_value(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.gen_value(rng),
            self.1.gen_value(rng),
            self.2.gen_value(rng),
            self.3.gen_value(rng),
        )
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.len.end - self.len.start;
            let n = self.len.start + rng.below(span.max(1));
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    pub struct Select<T: Clone>(Vec<T>);

    /// `prop::sample::select(choices)`.
    pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
        assert!(!choices.is_empty(), "select needs at least one choice");
        Select(choices)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len())].clone()
        }
    }
}

// ---------------------------------------------------------------------------
// Runner plumbing.

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestRng,
    };

    /// `prop::collection::vec(...)` / `prop::sample::select(...)` paths.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`", left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}", left, right, format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right
            )));
        }
    }};
}

/// The `proptest! { ... }` block: expands each contained test fn into a
/// plain `#[test]` that loops `cases` deterministic generations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    ($config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::gen_value(&($strategy), &mut rng);)*
                let described = format!(
                    concat!($(stringify!($arg), " = {:?}, "),*),
                    $(&$arg),*
                );
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })();
                if let Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} failed: {}\n  inputs: {}",
                        case + 1, config.cases, e, described
                    );
                }
            }
        }
    )*};
}
