//! Offline stand-in for the subset of `criterion` this workspace uses. It
//! runs each benchmark a handful of times with `Instant` timing and prints
//! mean wall time per iteration — enough to catch order-of-magnitude
//! regressions, with none of criterion's statistics or HTML reports.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch sizing hint (accepted for API compatibility; batches are always
/// one input here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            budget: self.measurement_time,
            max_samples: self.sample_size,
        };
        f(&mut b);
        let n = b.samples.len().max(1);
        let mean: Duration = b.samples.iter().sum::<Duration>() / n as u32;
        println!("bench {id:<40} {mean:>12.3?}/iter ({n} samples)");
        self
    }
}

pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    max_samples: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up
        let deadline = Instant::now() + self.budget;
        while self.samples.len() < self.max_samples && Instant::now() < deadline {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up
        let deadline = Instant::now() + self.budget;
        while self.samples.len() < self.max_samples && Instant::now() < deadline {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
