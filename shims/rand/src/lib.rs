//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses. The build environment has no registry access, so the workspace
//! resolves `rand` to this shim. Only the traits and methods actually called
//! in-tree are provided: `RngCore`, `SeedableRng`, and `Rng` with
//! `gen::<f64>()` / `gen_range(<int range>)` / `gen_bool`.

use std::ops::Range;

/// Core random-number source: 32/64-bit words and byte fills.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

/// Construction from a fixed-size seed.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion, as in upstream `rand`.
        let mut seed = Self::Seed::default();
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let b = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&b[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Values samplable uniformly from the full output of an RNG
/// (`rng.gen::<T>()`).
pub trait StandardSample: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges samplable via `rng.gen_range(range)`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Debiased via rejection: retry while the draw falls in the
                // truncated tail of the u64 space.
                let zone = u64::MAX - (u64::MAX % span as u64 + 1) % span as u64;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return (self.start as i128 + (v as u128 % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
