//! Offline stand-in for `rand_chacha`: a real ChaCha8 stream cipher core
//! behind the `RngCore`/`SeedableRng` traits of the in-tree `rand` shim.
//! The exact word stream differs from upstream `rand_chacha` (block/word
//! ordering details), but it is a genuine keyed ChaCha8 keystream, stable
//! across platforms and releases — which is the property the workspace
//! relies on for reproducible simulations.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, keyed by a 32-byte seed, zero nonce, 64-bit block
/// counter.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// The 16-word input state (constants, key, counter, nonce).
    state: [u32; 16],
    /// Buffered keystream words from the last block.
    buf: [u32; 16],
    /// Next unread index into `buf`; 16 means "refill".
    idx: usize,
}

#[inline(always)]
fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut w = self.state;
        // 8 rounds = 4 double rounds (column + diagonal).
        for _ in 0..4 {
            quarter(&mut w, 0, 4, 8, 12);
            quarter(&mut w, 1, 5, 9, 13);
            quarter(&mut w, 2, 6, 10, 14);
            quarter(&mut w, 3, 7, 11, 15);
            quarter(&mut w, 0, 5, 10, 15);
            quarter(&mut w, 1, 6, 11, 12);
            quarter(&mut w, 2, 7, 8, 13);
            quarter(&mut w, 3, 4, 9, 14);
        }
        for (i, word) in w.iter().enumerate() {
            self.buf[i] = word.wrapping_add(self.state[i]);
        }
        // 64-bit counter in words 12/13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        ChaCha8Rng {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_key_sensitive() {
        let mut a = ChaCha8Rng::from_seed([7u8; 32]);
        let mut b = ChaCha8Rng::from_seed([7u8; 32]);
        let mut c = ChaCha8Rng::from_seed([8u8; 32]);
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut r = ChaCha8Rng::from_seed([1u8; 32]);
        let first_block: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }
}
